"""Parallel window ingest: pipeline block selection, fan consume to workers.

:class:`ParallelScanDriver` is the multi-core counterpart of the serial
loops in :mod:`repro.fastframe.executor` (``run_shared_scan`` and the solo
``execute``/``rounds`` drivers).  It exploits the two parallel axes the
window-frame architecture exposes:

* **Pipelining** — block selection consults only bitmap metadata and (for
  non-active strategies) none of the run's evolving state, so selection
  for window k+1 runs in the main process *while worker processes are
  still ingesting window k* (the :meth:`ScanCursor.peek_window` half of
  the prefetch/lookahead split).
* **Per-query consume fan-out** — once a window's
  :class:`~repro.fastframe.window.WindowFrame` is materialized, each
  query run's consumption of it (predicate slice, gather, stable sort by
  group code, per-view bincount statistics) is independent of every other
  run's.  The driver exports the frame's buffers (row ids, value arrays,
  combined group codes, predicate masks) to POSIX shared memory once,
  groups the offloadable partitions into *task batches* (``task_batch``
  partitions per worker task; ``None`` auto-sizes to
  ``ceil(partitions / workers)`` so one window costs one task per
  worker), and submits the batches to a persistent process pool; workers
  attach the frame once per batch and return one per-view bincount
  :class:`~repro.fastframe.kernels.IngestDelta` per partition.  For
  delta-capable
  bounders (``ErrorBounder.supports_delta``) the worker also runs the
  bounder's pure ``partition_delta`` kernel, and — when every view is
  settling — drops the O(rows) ``view_idx``/``values`` arrays from the
  return payload entirely: only O(views) delta arrays cross IPC
  (``ExecutionMetrics.delta_bytes_returned`` counts what ships, and the
  ``partition_wall_s``/``merge_wall_s`` counters split the ingest wall
  between the two stages).

**Why results are bit-identical to serial.**  Workers only run the *pure*
half of ingest (:func:`~repro.fastframe.kernels.partition_ingest` and
the bounder's ``partition_delta`` over
read-only shared buffers — the same fused kernel the serial path runs in
place); all state mutation happens in the main process, which folds the
deltas into each run's :class:`~repro.fastframe.viewpool.ViewPool` via
:meth:`~repro.fastframe.executor.QueryRun.consume_delta` in deterministic
window-then-run order — the exact order the serial loop uses.  Batching
changes only how deltas travel (several per task instead of one), never
the deltas themselves or the fold order, so pool state is byte-identical
at any ``parallelism`` × ``task_batch``.  Prefetched
block selections are charged to metrics only when consumed, and the probe
counters of a selection that is discarded (its run retired meanwhile) are
reconciled, so every :class:`~repro.fastframe.query.ExecutionMetrics`
counter except wall time is also identical.  The determinism suite
(``tests/harness/test_parallel_determinism.py``) pins byte-identical pool
state and metrics across ``parallelism`` 1/2/4.

Scalar-engine runs (and pool runs below :data:`MIN_OFFLOAD_ELEMENTS`
in-view elements, where IPC would cost more than the partition) consume
inline in the main process — same arrays, same results.  If the platform
offers no usable process pool or shared memory, the driver degrades to
fully inline execution with identical semantics.

**Fault tolerance.**  Because every worker task is a *pure recompute*
of inputs the main process still holds, any failure is recoverable with
byte-identical results.  Each task batch carries a deadline
(``task_timeout`` / ``REPRO_TASK_TIMEOUT``, covering the whole batch); a
timed-out or crashed batch is re-dispatched whole up to
:data:`MAX_TASK_ATTEMPTS` times under exponential backoff, and as the
always-correct last resort every slice in it is recomputed in-process
via the inline path.  A broken pool
(``BrokenProcessPool``/dead workers) is rebuilt with backoff up to
:data:`MAX_POOL_REBUILDS` times per scan, after which the driver degrades
permanently to inline execution.  Every recovery action is counted in
``ExecutionMetrics`` (``tasks_retried`` / ``tasks_timed_out`` /
``inline_fallbacks`` / ``pool_rebuilds`` / ``shm_cleanup_failures``).
Deterministic chaos for all of this lives in :mod:`repro.testing.faults`.

``parallelism`` resolution: an explicit knob wins; ``None`` defers to the
``REPRO_PARALLELISM`` environment variable (the CI matrix leg sets it to
2 to run the whole tier-1 suite through this driver), then 1.
``task_timeout`` resolves the same way through ``REPRO_TASK_TIMEOUT``
(seconds; ``0`` or negative disables the deadline), and ``task_batch``
through ``REPRO_TASK_BATCH`` (partitions per worker task; unset, ``0``
or negative means auto-size per window).
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from repro.fastframe.kernels import partition_ingest, partition_slice, slice_elements
from repro.fastframe.query import ExecutionMetrics
from repro.fastframe.window import (
    WindowFrame,
    attach_shared_frame,
    predicate_key,
)
from repro.testing.faults import (
    InjectedWorkerFault,
    draw_task_fault,
    execute_worker_fault,
)

__all__ = [
    "ParallelScanDriver",
    "resolve_parallelism",
    "resolve_task_timeout",
    "resolve_task_batch",
    "REPRO_PARALLELISM_ENV",
    "REPRO_TASK_TIMEOUT_ENV",
    "REPRO_TASK_BATCH_ENV",
    "MIN_OFFLOAD_ELEMENTS",
    "MAX_TASK_ATTEMPTS",
    "MAX_POOL_REBUILDS",
]

#: Environment variable consulted when no explicit parallelism is given.
REPRO_PARALLELISM_ENV = "REPRO_PARALLELISM"

#: Environment variable consulted when no explicit task timeout is given.
REPRO_TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Environment variable consulted when no explicit task batch is given.
REPRO_TASK_BATCH_ENV = "REPRO_TASK_BATCH"

#: In-view elements below which a run's window slice is partitioned inline
#: — at this size the sort+bincount costs less than a task round trip.
MIN_OFFLOAD_ELEMENTS = 256

#: Default per-task deadline (seconds).  Partition tasks are sub-second;
#: a minute of silence means the worker is gone, not slow.
DEFAULT_TASK_TIMEOUT_S = 60.0

#: Dispatch attempts per task (first submit + re-dispatches) before the
#: slice is recomputed inline.
MAX_TASK_ATTEMPTS = 3

#: Base of the exponential re-dispatch backoff (seconds): attempt k
#: sleeps ``RETRY_BACKOFF_S * 2**(k-1)`` before resubmitting.
RETRY_BACKOFF_S = 0.02

#: Pool rebuilds per scan before permanent inline degradation.
MAX_POOL_REBUILDS = 2

#: Pause before rebuilding a broken pool (seconds).
POOL_REBUILD_BACKOFF_S = 0.1

#: Worker exceptions that warrant a re-dispatch: injected crashes and the
#: transient OS-level failures a sibling's death can cause (shm attach
#: races, fd exhaustion, allocation failure).  Anything else — a genuine
#: bug in the partition kernels — propagates: retrying a deterministic
#: error would loop, and hiding it behind the inline path would mask it.
RETRIABLE_TASK_ERRORS = (InjectedWorkerFault, MemoryError, OSError)


def resolve_parallelism(parallelism: int | None) -> int:
    """An explicit knob, else ``REPRO_PARALLELISM``, else 1 (min 1)."""
    if parallelism is None:
        raw = os.environ.get(REPRO_PARALLELISM_ENV, "").strip()
        try:
            parallelism = int(raw) if raw else 1
        except ValueError:
            parallelism = 1
    return max(int(parallelism), 1)


def resolve_task_timeout(task_timeout: float | None) -> float | None:
    """An explicit knob, else ``REPRO_TASK_TIMEOUT``, else the default;
    zero or negative means no deadline (``None``)."""
    if task_timeout is None:
        raw = os.environ.get(REPRO_TASK_TIMEOUT_ENV, "").strip()
        if not raw:
            return DEFAULT_TASK_TIMEOUT_S
        try:
            task_timeout = float(raw)
        except ValueError:
            return DEFAULT_TASK_TIMEOUT_S
    task_timeout = float(task_timeout)
    return task_timeout if task_timeout > 0 else None


def resolve_task_batch(task_batch: int | None) -> int | None:
    """An explicit knob, else ``REPRO_TASK_BATCH``, else ``None`` (auto).

    ``None`` means auto-size per window: ``ceil(partitions / workers)``,
    so every window costs at most one task round trip per worker.  Zero,
    negative, or unparsable values also mean auto.  ``1`` disables
    batching (one partition per task — exactly the pre-batching driver).
    """
    if task_batch is None:
        raw = os.environ.get(REPRO_TASK_BATCH_ENV, "").strip()
        if not raw:
            return None
        try:
            task_batch = int(raw)
        except ValueError:
            return None
    task_batch = int(task_batch)
    return task_batch if task_batch >= 1 else None


# ----------------------------------------------------------------------
# Persistent worker pool (shared by every driver in the process; workers
# hold no per-scramble state, so one pool serves any number of scans).
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _worker_pool(workers: int) -> ProcessPoolExecutor | None:
    """The shared process pool, (re)created to hold >= ``workers``."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    shutdown_worker_pool()
    import multiprocessing as mp

    try:
        # fork is cheapest and lets workers inherit the warm interpreter;
        # fall back to the platform default (spawn) elsewhere.  Workers
        # read only shared-memory buffers + task payloads, so both work.
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOL_WORKERS = workers
    except (OSError, ImportError, NotImplementedError, ValueError, RuntimeError):
        # Restricted platforms: no fork/semaphores (OSError/ImportError/
        # NotImplementedError), or a hardened runtime rejecting process
        # creation (ValueError/RuntimeError).  The driver runs inline.
        _POOL = None
        _POOL_WORKERS = 0
    return _POOL


def shutdown_worker_pool() -> None:
    """Tear down the shared pool (idempotent; re-created on demand)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_worker_pool)


def _partition_batch_task(descriptor: dict, specs: list):
    """Worker body: partition a batch of runs' slices of one exported window.

    Attaches the shared-memory frame **once** and runs
    :func:`~repro.fastframe.kernels.partition_ingest` — the same fused
    kernel the serial paths call — once per spec, returning a list of
    ``(IngestDelta, partition_seconds)`` aligned with ``specs``.  Per-view
    bincount statistics are precomputed so the main process's merge is
    O(views); when a spec carries a delta-capable bounder the kernel also
    runs the pure ``partition_delta`` and (``spec["native"]``) drops the
    O(rows) arrays from the payload — only O(views) deltas cross IPC.
    Per-item seconds are cumulative splits (the attach is charged to the
    first item), so their sum is the task's wall time.

    Pure: touches no executor state — which is what makes every batch
    safely re-dispatchable: running it 0, 1, or N times leaves nothing
    behind, and its return value is a deterministic function of the
    (frozen) shared buffers.  ``own_arrays=True`` re-materializes any
    zero-copy views the fused kernel produced: a delta must not keep a
    buffer of the attached frame alive past ``frame.close()``, or the
    persistent worker would leak the mapping.

    ``spec["fault"]`` is the chaos seam: a directive drawn by the driver
    (deterministically, see :mod:`repro.testing.faults`) is acted out at
    its spec's position in the loop — crash, straggle, or kill the
    process mid-batch — exercising whole-batch recovery.  Attach-time
    directives (shm-attach-failure) are honored by the attach itself,
    wherever in the batch they ride.
    """
    start = time.perf_counter()
    fault = next((s.get("fault") for s in specs if s.get("fault") is not None), None)
    frame = attach_shared_frame(descriptor, fault=fault)
    try:
        results = []
        last = start
        for spec in specs:
            execute_worker_fault(spec.get("fault"))
            mask_bits = spec["mask_bits"]
            sel = None if mask_bits is None else mask_bits[frame.array("row_blocks")]
            value_key = spec["value_key"]
            group_key = spec["group_key"]
            delta = partition_ingest(
                frame.rows_size,
                sel,
                lambda key=spec["pred_key"]: frame.array("mask", key),
                spec["codes"],
                values_of=(
                    None
                    if value_key is None
                    else lambda pick, key=value_key: frame.array("values", key)[pick]
                ),
                combined_of=(
                    None
                    if group_key is None
                    else lambda pick, key=group_key: frame.array("combined", key)[pick]
                ),
                with_stats=True,
                native=spec["native"],
                bounder=spec["bounder"],
                bounder_ctx=spec["bounder_ctx"],
                own_arrays=True,
            )
            now = time.perf_counter()
            results.append((delta, now - last))
            last = now
        return results
    finally:
        frame.close()


class _RunWindowState:
    """Per-(run, window) bookkeeping between the slice and fold phases.

    ``batch`` points at the :class:`_TaskBatch` this run's partition was
    grouped into (``None`` for inline runs) and ``index_in_batch`` at its
    slot in the batch's spec/result lists; ``fallback`` marks a slice
    that never reached a worker (no shared memory) and must be
    recomputed inline.
    """

    __slots__ = ("sel", "window_slice", "batch", "index_in_batch", "fallback")

    def __init__(self) -> None:
        self.sel = None
        self.window_slice = None
        self.batch = None
        self.index_in_batch = 0
        self.fallback = False


class _TaskBatch:
    """One worker task: a batch of partitions sharing dispatch fate.

    ``positions`` indexes the batch's members into the window's ``live``
    run list, in serial fold order; ``specs`` holds the frozen task
    recipes (re-dispatches reuse them — the native gate evaluated at
    first submit still holds until the window's rounds run, which is
    after phase 4); ``attempts`` counts dispatches of the *whole* batch;
    ``pool`` records which pool instance the live future was submitted
    to, so a broken-pool recovery triggered by one batch does not tear
    down the pool a *later* batch was already resubmitted to;
    ``fallback`` marks a batch that exhausted its dispatch budget —
    every member slice is then recomputed inline; ``results`` memoizes
    the worker's ``(delta, seconds)`` list once collected, so the first
    member to fold awaits the task and later members just index into it.
    """

    __slots__ = ("positions", "specs", "future", "attempts", "pool", "fallback", "results")

    def __init__(self, positions: list) -> None:
        self.positions = positions
        self.specs: list = []
        self.future = None
        self.attempts = 0
        self.pool = None
        self.fallback = False
        self.results = None


class ParallelScanDriver:
    """Drive query runs from one cursor with pipelined, multi-core ingest.

    Parameters
    ----------
    runs:
        The :class:`~repro.fastframe.executor.QueryRun` batch (one for
        solo execution).
    cursor:
        The shared :class:`~repro.fastframe.scan.ScanCursor`.
    parallelism:
        Worker processes (>= 1; at 1 everything runs inline but the
        pipeline structure is identical).
    solo:
        Mirror the accounting of :meth:`QueryRun.feed` (frame gathers
        charged to the single run, bitmap counters left for
        ``run.finalize()``) instead of the batch accounting of
        :func:`~repro.fastframe.executor.run_shared_scan`.
    task_timeout:
        Per-task deadline in seconds, covering a whole batch (``None``
        defers to ``REPRO_TASK_TIMEOUT``, then
        :data:`DEFAULT_TASK_TIMEOUT_S`; zero/negative disables the
        deadline).
    task_batch:
        Partitions bundled per worker task (``None`` defers to
        ``REPRO_TASK_BATCH``, then auto-sizes each window to
        ``ceil(partitions / workers)``).  Batch size never changes a
        byte of any result — only how many deltas share one task round
        trip.
    """

    def __init__(
        self,
        runs: list,
        cursor,
        parallelism: int,
        solo: bool = False,
        task_timeout: float | None = None,
        task_batch: int | None = None,
    ) -> None:
        from repro.fastframe.executor import validate_shared_runs

        validate_shared_runs(runs, cursor)
        if solo and len(runs) != 1:
            raise ValueError("solo mode drives exactly one run")
        self.runs = list(runs)
        self.cursor = cursor
        self.workers = max(int(parallelism), 1)
        self.solo = solo
        self.task_timeout = resolve_task_timeout(task_timeout)
        self.task_batch = resolve_task_batch(task_batch)
        self.metrics = ExecutionMetrics()
        self._start_time = time.perf_counter()
        self._indexes = {}
        for run in self.runs:
            self._indexes.update(run.indexes)
        self._pool = _worker_pool(self.workers) if self.workers > 1 else None
        # Out-of-core block I/O charged window-by-window to the batch
        # metrics (and to the solo run, mirroring values_gathered).  Only
        # main-process reads count: workers re-gather from their own
        # store attachments and their stats die with the task.
        from repro.fastframe.storage import storage_tracker

        self._storage_tracker = storage_tracker(cursor.scramble)
        self._pool_rebuilds = 0
        #: Permanent inline degradation: set when pool recovery gives up.
        self._degraded = False
        # Prefetched next window: (window, at_end, {id(run): mask},
        # {id(run): [(index, probe_delta, batch_delta), ...]}).
        self._prefetched: tuple | None = None

    # -- driving --------------------------------------------------------

    def run(self) -> ExecutionMetrics:
        """Process every window to completion; return the batch metrics."""
        for _ in self.windows():
            pass
        return self.finish()

    def windows(self):
        """Generator driving one window per iteration (the rounds() hook).

        Yields the window's block ids after the window has been fully
        consumed by every live run, so progressive-round callers can
        inspect run state between windows exactly as the serial loop
        allows.  Closing the generator reconciles any prefetched
        selection's probe counters.
        """
        cursor = self.cursor
        try:
            while not cursor.exhausted:
                if self._prefetched is not None:
                    window, at_end, masks, probe_deltas = self._prefetched
                    self._prefetched = None
                    cursor.next_window()  # consume the peeked window
                else:
                    window = cursor.next_window()
                    at_end = cursor.exhausted
                    masks, probe_deltas = {}, {}
                live = [run for run in self.runs if not run.finished]
                # Selections prefetched for runs that retired meanwhile
                # were never consumed: take their probes back so the
                # shared counters match what a serial scan would record.
                for run in self.runs:
                    if run.finished and id(run) in probe_deltas:
                        self._uncharge(probe_deltas.pop(id(run)))
                self._process(window, at_end, live, masks)
                yield window
                if all(run.finished for run in self.runs):
                    break
        finally:
            self._discard_prefetched()

    def finish(self) -> ExecutionMetrics:
        """Seal the batch metrics (mirror of ``run_shared_scan``'s tail)."""
        self.metrics.stopped_early = all(run.satisfied for run in self.runs)
        self.metrics.bounds_recomputed = sum(
            run.metrics.bounds_recomputed for run in self.runs
        )
        if not self.solo:
            # Solo accounting leaves the scramble-shared counters for the
            # run's own finalize(), exactly like the serial solo loop.
            self.metrics.merge_index_counters(self._indexes.values())
        self.metrics.wall_time_s = time.perf_counter() - self._start_time
        return self.metrics

    # -- one window -----------------------------------------------------

    def _process(
        self, window: np.ndarray, at_end: bool, live: list, pre_masks: dict
    ) -> None:
        masks = []
        for run in live:
            mask = pre_masks.pop(id(run), None)
            if mask is None:
                mask = run.select_blocks(window)
            else:
                run.charge_blocks(window, mask)
            masks.append(mask)
        union = np.zeros(window.shape, dtype=bool)
        for mask in masks:
            union |= mask
        frame = WindowFrame(self.cursor.scramble, window, union)

        # Phase 1 — slice main-side state and materialize frame inputs
        # under exactly the serial lazy conditions (values_gathered must
        # match the serial loop bit for bit).
        states = [self._slice(run, frame, mask) for run, mask in zip(live, masks)]

        # Phase 2 — export the frame once, fan the heavy partitions out
        # in task batches (one attach + one round trip per batch).
        export = None
        offload = [
            position
            for position, (run, state) in enumerate(zip(live, states))
            if (
                self._pool is not None
                and run.pool is not None
                and state.window_slice.n_in_view >= MIN_OFFLOAD_ELEMENTS
            )
        ]
        if offload:
            try:
                export = frame.export_shared()
            except (OSError, ImportError, MemoryError):
                # No usable shared memory (platform restriction, /dev/shm
                # exhaustion): every offload candidate this window falls
                # back inline — counted, not silent.
                export = None
                for position in offload:
                    states[position].fallback = True
            if export is not None:
                size = self._batch_size(len(offload))
                for start in range(0, len(offload), size):
                    batch = _TaskBatch(offload[start : start + size])
                    for index, position in enumerate(batch.positions):
                        run, state = live[position], states[position]
                        batch.specs.append(
                            self._worker_spec(run, frame, masks[position], state)
                        )
                        state.batch = batch
                        state.index_in_batch = index
                    if not self._submit_batch(export, batch, live):
                        batch.fallback = True

        try:
            # Phase 3 — overlap: block selection for the next window runs
            # while workers partition this one.  Only strategies that
            # ignore active groups select identically before/after this
            # window's rounds, so only those are prefetched.
            if not at_end and export is not None:
                self._prefetch(live)

            # Phase 4 — fold, in deterministic run order (serial order).
            # Recovery happens inside _await_batch; whatever path computed
            # the delta, it is folded here, in this order — which is why
            # recovered runs stay byte-identical to serial at any
            # parallelism × task_batch.
            for run, mask, state in zip(live, masks, states):
                result = None
                if state.batch is not None:
                    self._await_batch(export, state.batch, live)
                    if state.batch.results is not None:
                        result = state.batch.results[state.index_in_batch]
                if result is not None:
                    delta, partition_s = result
                    payload = delta.payload_nbytes()
                    run.metrics.delta_bytes_returned += payload
                    self.metrics.delta_bytes_returned += payload
                    run.metrics.partition_wall_s += partition_s
                    self.metrics.partition_wall_s += partition_s
                    merge_start = time.perf_counter()
                    run.consume_delta(delta, frame.window_rows, at_end)
                    merge_s = time.perf_counter() - merge_start
                    run.metrics.merge_wall_s += merge_s
                    self.metrics.merge_wall_s += merge_s
                elif run.pool is not None:
                    if state.fallback or (
                        state.batch is not None and state.batch.fallback
                    ):
                        # Retries exhausted / no pool / no shared memory:
                        # the always-correct last resort, recompute the
                        # slice in-process (same arrays, same arithmetic).
                        self._count(run, "inline_fallbacks")
                    run.consume_delta(
                        self._inline_delta(run, frame, state),
                        frame.window_rows,
                        at_end,
                    )
                else:
                    run.consume(frame, mask, at_end)
                if run.finished and not self.solo:
                    # Seal the run the moment it retires (wall time spans
                    # construction → retirement; finalize is cached).
                    run.finalize(merge_index_counters=False)
        finally:
            if export is not None:
                self.metrics.shm_cleanup_failures += export.close()

        if self.solo:
            live[0].metrics.values_gathered += frame.values_gathered
            self._storage_tracker.drain(self.metrics, live[0].metrics)
        else:
            self._storage_tracker.drain(self.metrics)
        fetched = int(union.sum())
        self.metrics.blocks_fetched += fetched
        self.metrics.blocks_skipped += int(window.size - fetched)
        self.metrics.rows_read += frame.rows.size
        self.metrics.values_gathered += frame.values_gathered
        self.metrics.rounds += 1

    def _slice(self, run, frame: WindowFrame, mask: np.ndarray) -> _RunWindowState:
        """Main-side slice bookkeeping for one pool run (scalar runs are
        consumed whole in phase 4 and need none)."""
        state = _RunWindowState()
        if run.pool is None:
            return state
        state.sel = frame.element_selector(mask)
        state.window_slice = slice_elements(
            frame.rows.size,
            state.sel,
            lambda: frame.predicate_mask(run.query.predicate),
        )
        if state.window_slice.n_in_view:
            # Materialize the union arrays a worker will read, under the
            # run's own lazy conditions (frame_values_of/frame_combined_of
            # return None exactly when the run needs no such array), so
            # values_gathered matches the serial loop bit for bit.
            if run.frame_values_of(frame) is not None:
                frame.values(run.value_key, run.values_of)
            if run.frame_combined_of(frame) is not None:
                group_by = run.group_by
                ex = run.executor
                frame.combined_codes(
                    group_by, lambda rows: ex._combined_codes(group_by, rows)
                )
        return state

    def _worker_spec(
        self, run, frame: WindowFrame, mask: np.ndarray, state: _RunWindowState
    ) -> dict:
        """The picklable per-task recipe for :func:`_partition_task`.

        ``native`` is the drop-the-row-arrays gate: the worker's bounder
        delta (and precomputed stats) can replace ``view_idx``/``values``
        only when every view is settling — a native delta is partitioned
        over the whole stream, and the pool's flags cannot change between
        this submit and the window's fold (rounds run after phase 4), so
        the gate evaluated here still holds at merge time.  Value queries
        additionally need a delta-capable bounder; COUNT queries never
        feed the bounder, so their precomputed bincount suffices.
        """
        bounder = run.bounder
        needs_values = run.value_key is not None
        native = bool(run.pool.settling_mask(run.freezes_groups).all()) and (
            not needs_values or bounder.supports_delta
        )
        ship_bounder = native and needs_values
        return {
            "mask_bits": None if state.sel is None else mask[frame.union_mask],
            "pred_key": predicate_key(run.query.predicate),
            "value_key": run.value_key,
            "group_key": run.group_by if run.pool.size > 1 else None,
            "codes": run.pool.codes,
            "native": native,
            "bounder": bounder if ship_bounder else None,
            "bounder_ctx": (
                bounder.delta_context(run.pool.bounder_pool) if ship_bounder else None
            ),
        }

    def _inline_delta(self, run, frame: WindowFrame, state: _RunWindowState):
        """Partition a pool run's slice in-process (below the offload
        cutoff, shared memory unavailable, or task retries exhausted) —
        the serial arithmetic."""
        return partition_slice(
            state.window_slice,
            run.pool.codes,
            values_of=run.frame_values_of(frame),
            combined_of=run.frame_combined_of(frame),
        )

    # -- task lifecycle / recovery --------------------------------------

    def _count(self, run, counter: str) -> None:
        """Increment a recovery counter on the run's metrics *and* the
        batch metrics (the ``delta_bytes_returned`` pattern)."""
        setattr(run.metrics, counter, getattr(run.metrics, counter) + 1)
        setattr(self.metrics, counter, getattr(self.metrics, counter) + 1)

    def _batch_size(self, n_offload: int) -> int:
        """Partitions per worker task for a window with ``n_offload``
        offloadable partitions: the explicit/env knob, else
        ``ceil(n_offload / workers)`` — the whole window costs at most
        one task round trip per worker while every worker stays busy."""
        if self.task_batch is not None:
            return self.task_batch
        return max(1, -(-n_offload // self.workers))

    def _submit_batch(self, export, batch: _TaskBatch, live: list) -> bool:
        """Dispatch (or re-dispatch) one task batch; True on success.

        One deterministic chaos draw per dispatch
        (:func:`~repro.testing.faults.draw_task_fault`) — batching
        amortizes the fault-plan bookkeeping exactly like the IPC.  The
        drawn directive rides on the batch's *middle* spec, so injected
        crashes land mid-batch and exercise whole-batch recovery (at
        batch size 1 the middle is the only spec — the pre-batching
        behavior).  The pool the future went to is recorded on the batch
        so a later broken-pool recovery triggered by *this* batch never
        tears down a pool other batches were already resubmitted to.
        """
        if self._pool is None or not batch.specs:
            return False
        specs = batch.specs
        directive = draw_task_fault()
        if directive is not None:
            specs = list(specs)
            middle = len(specs) // 2
            spec = dict(specs[middle])
            spec["fault"] = directive
            specs[middle] = spec
        try:
            future = self._pool.submit(_partition_batch_task, export.descriptor, specs)
        except (BrokenExecutor, RuntimeError, OSError):
            # The pool broke between windows (workers OOM-killed, fd
            # exhaustion): rebuild once and retry this submit.
            self._recover_pool(live[batch.positions[0]])
            if self._pool is None:
                return False
            try:
                future = self._pool.submit(
                    _partition_batch_task, export.descriptor, specs
                )
            except (BrokenExecutor, RuntimeError, OSError):
                return False
        batch.future = future
        batch.pool = self._pool
        batch.attempts += 1
        return True

    def _await_batch(self, export, batch: _TaskBatch, live: list) -> None:
        """Collect one batch's ``(delta, partition_seconds)`` list into
        ``batch.results`` under the batch deadline, re-dispatching the
        whole batch on straggle/crash/broken pool.

        Memoized: the first member to fold pays the wait; later members
        index the memoized list.  Leaves ``batch.fallback`` set (results
        ``None``) when the dispatch budget is exhausted or no pool
        survives — every member slice is then recomputed inline.  Every
        path out of here leaves each delta the same bytes the serial
        arithmetic produces; only the recovery counters differ, charged
        once per member run (so batch size 1 reduces exactly to the
        pre-batching counters).
        """
        if batch.results is not None or batch.fallback:
            return
        while True:
            future, pool = batch.future, batch.pool
            if future is None:
                batch.fallback = True
                return
            try:
                batch.results = future.result(timeout=self.task_timeout)
                return
            except (FutureTimeoutError, TimeoutError):
                # A straggler blew the deadline.  Cancel if still queued;
                # a *running* hang cannot be cancelled — its eventual
                # result is simply never read (and the export's segments
                # outlive it only until this window's fold finishes).
                for position in batch.positions:
                    self._count(live[position], "tasks_timed_out")
                future.cancel()
            except BrokenExecutor:
                # Pool died under this batch.  Only the first observer
                # rebuilds: later batches' futures from the dead pool fail
                # the identity check and just re-dispatch to the new one.
                if pool is self._pool:
                    self._recover_pool(live[batch.positions[0]])
            except RETRIABLE_TASK_ERRORS:
                # Transient in-worker failure (injected crash, shm attach
                # race, allocation failure): the batch is pure, so
                # re-running it is always safe.
                pass
            batch.future = None
            if batch.attempts >= MAX_TASK_ATTEMPTS or self._pool is None:
                batch.fallback = True
                return
            time.sleep(RETRY_BACKOFF_S * (2 ** (batch.attempts - 1)))
            if self._submit_batch(export, batch, live):
                for position in batch.positions:
                    self._count(live[position], "tasks_retried")
            else:
                batch.fallback = True
                return

    def _recover_pool(self, run) -> None:
        """Tear down a broken pool and rebuild it with backoff; after
        :data:`MAX_POOL_REBUILDS` rebuilds the driver degrades to
        permanent inline execution (correct, just slower)."""
        shutdown_worker_pool()
        self._pool = None
        if self._degraded:
            return
        if self._pool_rebuilds >= MAX_POOL_REBUILDS:
            self._degraded = True
            return
        self._pool_rebuilds += 1
        time.sleep(POOL_REBUILD_BACKOFF_S * (2 ** (self._pool_rebuilds - 1)))
        self._pool = _worker_pool(self.workers)
        if self._pool is None:
            self._degraded = True
        else:
            self._count(run, "pool_rebuilds")

    # -- prefetch -------------------------------------------------------

    def _prefetch(self, live: list) -> None:
        """Select blocks for the next window while workers are busy.

        Masks are computed *uncharged* (via ``run.scan_context()``) and
        charged when consumed; per-run bitmap probe-counter deltas are
        recorded so a discarded selection can be reconciled.
        """
        window = self.cursor.peek_window()
        if window.size == 0:
            return
        at_end = self.cursor.peek_at_end()
        masks: dict = {}
        probe_deltas: dict = {}
        for run in live:
            if run.uses_active:
                continue  # selection depends on this window's round
            before = [
                (index, index.probe_count, index.batch_probe_count)
                for index in run.indexes.values()
            ]
            masks[id(run)] = run.strategy.select_blocks(window, run.scan_context())
            probe_deltas[id(run)] = [
                (index, index.probe_count - probes, index.batch_probe_count - batches)
                for index, probes, batches in before
            ]
        if masks:
            self._prefetched = (window, at_end, masks, probe_deltas)

    def _uncharge(self, deltas: list) -> None:
        """Take back the probe counts of a discarded prefetched selection."""
        for index, probes, batches in deltas:
            index.probe_count -= probes
            index.batch_probe_count -= batches

    def _discard_prefetched(self) -> None:
        if self._prefetched is None:
            return
        _, _, _, probe_deltas = self._prefetched
        for deltas in probe_deltas.values():
            self._uncharge(deltas)
        self._prefetched = None
