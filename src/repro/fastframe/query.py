"""Query specifications and results for FastFrame.

A :class:`Query` describes a single-aggregate SQL query of the shape the
paper evaluates (Figure 5): an AVG/SUM/COUNT aggregate over a continuous
column (or derived expression), an optional WHERE predicate, an optional
GROUP BY over categorical columns, and a stopping condition from §4.2 that
encodes how the aggregate is consumed downstream (HAVING threshold, ORDER
BY … LIMIT K, accuracy contract, …).

Each (group × predicate) combination induces one *aggregate view*
(Definition 5); the error probability δ is divided across views to
preserve guarantees (§4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable

from repro.bounders.base import Interval
from repro.fastframe.predicate import Predicate, TruePredicate
from repro.stopping.conditions import StoppingCondition

__all__ = [
    "AggregateFunction",
    "Query",
    "GroupResult",
    "ExecutionMetrics",
    "RecoveryCounters",
    "StorageCounters",
    "QueryResult",
]


class AggregateFunction(Enum):
    """Aggregates supported with confidence intervals (§4.1).

    MEDIAN/PERCENTILE are the order-statistics family: their intervals
    come from DKW-band inversion (:mod:`repro.cdfbounds.quantile`) rather
    than a mean bounder, so the executor gives each such query its own
    :class:`~repro.bounders.quantile.QuantileBounder`.
    """

    AVG = "AVG"
    SUM = "SUM"
    COUNT = "COUNT"
    MEDIAN = "MEDIAN"
    PERCENTILE = "PERCENTILE"

    @property
    def is_quantile(self) -> bool:
        """True for the order-statistics aggregates (MEDIAN/PERCENTILE)."""
        return self in (AggregateFunction.MEDIAN, AggregateFunction.PERCENTILE)


@dataclass(frozen=True)
class Query:
    """A single-aggregate approximate query.

    Parameters
    ----------
    aggregate:
        The aggregate function.
    column:
        Continuous column to aggregate (or a
        :class:`~repro.expressions.Expression` over continuous columns,
        whose derived range bounds are computed per Appendix B).  ``None``
        for COUNT.
    predicate:
        WHERE filter; defaults to TRUE.
    group_by:
        Categorical columns to group by (empty for a scalar aggregate).
    stopping:
        Stopping condition driving early termination and active groups.
    percentile:
        Quantile level ``p`` in (0, 1) for PERCENTILE queries (MEDIAN is
        fixed at 0.5 and must leave this ``None``).
    name:
        Label for experiment tables (e.g. ``"F-q2"``).
    """

    aggregate: AggregateFunction
    column: object | None
    stopping: StoppingCondition
    predicate: Predicate = field(default_factory=TruePredicate)
    group_by: tuple[str, ...] = ()
    percentile: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.aggregate is AggregateFunction.COUNT:
            if self.column is not None:
                raise ValueError("COUNT queries must not specify a column")
        elif self.column is None:
            raise ValueError(f"{self.aggregate.value} queries require a column")
        if self.aggregate is AggregateFunction.PERCENTILE:
            if self.percentile is None:
                raise ValueError("PERCENTILE queries require a percentile level")
            if not 0.0 < self.percentile < 1.0:
                raise ValueError(
                    f"percentile level must be in (0, 1), got {self.percentile}"
                )
        elif self.percentile is not None:
            raise ValueError(
                f"{self.aggregate.value} queries must not specify a percentile"
            )

    @property
    def quantile_p(self) -> float:
        """The quantile level of a MEDIAN/PERCENTILE query (0.5 for MEDIAN)."""
        if self.aggregate is AggregateFunction.MEDIAN:
            return 0.5
        if self.aggregate is AggregateFunction.PERCENTILE:
            return float(self.percentile)  # type: ignore[arg-type]
        raise ValueError(f"{self.aggregate.value} has no quantile level")

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.aggregate is AggregateFunction.PERCENTILE:
            parts = [f"PERCENTILE({self.column}, {self.percentile:g})"]
        else:
            parts = [f"{self.aggregate.value}({self.column or '*'})"]
        if not isinstance(self.predicate, TruePredicate):
            parts.append(f"WHERE {self.predicate!r}")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(self.group_by)}")
        parts.append(f"STOP WHEN {self.stopping!r}")
        return " ".join(parts)


@dataclass
class GroupResult:
    """Final state of one aggregate view.

    Attributes
    ----------
    key:
        Decoded group-by values (empty tuple for scalar queries).
    estimate:
        Point estimate of the group's aggregate.
    interval:
        Certified (1 − δ/views) CI for the aggregate (the OptStop running
        intersection).
    count_interval:
        Certified CI for the view's cardinality (Lemma 5); for exact
        execution this is the degenerate exact count.
    samples:
        Sampled tuples that contributed to the aggregate.
    exhausted:
        True if the entire view was read (the aggregate is exact).
    """

    key: tuple
    estimate: float
    interval: Interval
    count_interval: Interval
    samples: int
    exhausted: bool = False


@dataclass
class ExecutionMetrics:
    """Cost counters for one query execution (§5.3's metrics).

    ``blocks_fetched`` is the paper's CPU-independent comparison metric;
    ``rows_read`` counts tuples examined; ``index_probes`` counts
    synchronous single-block bitmap queries (ActiveSync cost) and
    ``batch_probes`` counts vectorized lookahead batches (ActivePeek cost).
    ``values_gathered`` counts aggregate-column value elements gathered
    from the scramble (per window-frame materialization — in a shared
    scan the batch metrics carry the union's gathers and per-run metrics
    record none); ``bounds_recomputed`` counts per-view OptStop bound
    recomputations (the incremental-rounds work metric).

    Parallel-ingest accounting: ``delta_bytes_returned`` counts array
    bytes shipped back by worker partition tasks (native bounder deltas
    are O(views); the loop-fallback path ships the O(rows) sorted value
    arrays — the difference is the IPC saving).  ``partition_wall_s`` /
    ``merge_wall_s`` split the ingest wall between the workers'
    partition stage (summed across tasks, so it can exceed elapsed time)
    and the main process's delta-merge stage.  All three are zero for
    serial execution; the byte counter is deterministic at a fixed
    parallelism, the walls are timing (excluded from determinism
    contracts like ``wall_time_s``).

    Fault-recovery accounting (all zero on a healthy run):
    ``tasks_retried`` counts worker tasks re-dispatched after a retriable
    failure; ``tasks_timed_out`` counts per-task deadline expiries
    (stragglers); ``inline_fallbacks`` counts window slices recomputed
    in-process after retries were exhausted (or the pool degraded);
    ``pool_rebuilds`` counts broken-pool recoveries; and
    ``shm_cleanup_failures`` counts shared-memory segments that would not
    release at export close.  None of these counters participates in the
    determinism contract — recovery changes *where* a delta is computed,
    never its bytes.

    Out-of-core storage accounting (all zero for the in-memory backend):
    ``blocks_read`` / ``bytes_read`` count block-file opens charged by
    the mmap store's cache misses; ``cache_hits`` counts gathers served
    from the shared block cache; ``cache_evictions`` counts LRU drops
    under the byte budget; ``prefetch_hits`` counts demand reads whose
    block the async prefetcher had already been scheduled to warm.  Like
    the recovery counters, they describe where bytes came from, never
    what they were — results are byte-identical across backends.
    """

    rows_read: int = 0
    blocks_fetched: int = 0
    blocks_skipped: int = 0
    index_probes: int = 0
    batch_probes: int = 0
    rounds: int = 0
    values_gathered: int = 0
    bounds_recomputed: int = 0
    delta_bytes_returned: int = 0
    partition_wall_s: float = 0.0
    merge_wall_s: float = 0.0
    wall_time_s: float = 0.0
    stopped_early: bool = False
    tasks_retried: int = 0
    tasks_timed_out: int = 0
    inline_fallbacks: int = 0
    pool_rebuilds: int = 0
    shm_cleanup_failures: int = 0
    blocks_read: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    prefetch_hits: int = 0

    def merge_index_counters(self, indexes) -> None:
        """Pull probe counters from bitmap indexes into this record."""
        for index in indexes:
            self.index_probes += index.probe_count
            self.batch_probes += index.batch_probe_count
            index.reset_counters()

    def recovery_snapshot(self) -> "RecoveryCounters":
        """The fault-recovery counters as one frozen record (truthy iff
        any recovery happened) — what rounds() updates and the CLI
        dashboard surface."""
        return RecoveryCounters(
            tasks_retried=self.tasks_retried,
            tasks_timed_out=self.tasks_timed_out,
            inline_fallbacks=self.inline_fallbacks,
            pool_rebuilds=self.pool_rebuilds,
            shm_cleanup_failures=self.shm_cleanup_failures,
        )

    def storage_snapshot(self) -> "StorageCounters":
        """The out-of-core storage counters as one frozen record (truthy
        iff any block I/O happened) — what rounds() updates and the CLI
        dashboard surface, mirroring :meth:`recovery_snapshot`."""
        return StorageCounters(
            blocks_read=self.blocks_read,
            bytes_read=self.bytes_read,
            cache_hits=self.cache_hits,
            cache_evictions=self.cache_evictions,
            prefetch_hits=self.prefetch_hits,
        )


@dataclass(frozen=True)
class RecoveryCounters:
    """A frozen snapshot of :class:`ExecutionMetrics`' fault-recovery
    counters; ``bool()`` is True exactly when any recovery happened."""

    tasks_retried: int = 0
    tasks_timed_out: int = 0
    inline_fallbacks: int = 0
    pool_rebuilds: int = 0
    shm_cleanup_failures: int = 0

    def __bool__(self) -> bool:
        return bool(
            self.tasks_retried
            or self.tasks_timed_out
            or self.inline_fallbacks
            or self.pool_rebuilds
            or self.shm_cleanup_failures
        )


@dataclass(frozen=True)
class StorageCounters:
    """A frozen snapshot of :class:`ExecutionMetrics`' out-of-core storage
    counters; ``bool()`` is True exactly when any block I/O happened."""

    blocks_read: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    prefetch_hits: int = 0

    def __bool__(self) -> bool:
        return bool(
            self.blocks_read
            or self.bytes_read
            or self.cache_hits
            or self.cache_evictions
            or self.prefetch_hits
        )


@dataclass
class QueryResult:
    """Result of executing a :class:`Query`: per-group results + metrics.

    ``delta`` is the error probability the execution was charged.  It is
    populated by the session layer (:class:`repro.api.Connection` /
    :class:`~repro.fastframe.session.Session`), which allocates each query
    a slice of the joint session budget; a bare
    :class:`~repro.fastframe.executor.ApproximateExecutor` run leaves it
    ``None`` (the executor's own ``delta`` applies).
    """

    query: Query
    groups: dict[Hashable, GroupResult]
    metrics: ExecutionMetrics
    delta: float | None = None

    def scalar(self) -> GroupResult:
        """The single group of a scalar (no GROUP BY) query."""
        if len(self.groups) != 1:
            raise ValueError(
                f"scalar() requires exactly one group, found {len(self.groups)}"
            )
        return next(iter(self.groups.values()))

    def keys_above(self, threshold: float) -> set:
        """Group keys certified above ``threshold`` (HAVING agg > t).

        A group qualifies when its whole interval lies above the threshold;
        with the ThresholdSide stopping condition every group is certified
        on one side at termination (up to the δ failure probability).
        """
        return {
            result.key
            for result in self.groups.values()
            if result.interval.lo > threshold
        }

    def keys_below(self, threshold: float) -> set:
        """Group keys certified below ``threshold`` (HAVING agg < t)."""
        return {
            result.key
            for result in self.groups.values()
            if result.interval.hi < threshold
        }

    def top_k(self, k: int, largest: bool = True) -> list:
        """Group keys of the k largest (or smallest) estimates, ranked."""
        ranked = sorted(
            self.groups.values(), key=lambda g: g.estimate, reverse=largest
        )
        return [result.key for result in ranked[:k]]

    def ordering(self) -> list:
        """All group keys ordered by descending estimate."""
        return self.top_k(len(self.groups))

    def max_interval_width(self) -> float:
        """Widest group CI (∞ if any group never gathered a sample)."""
        widths = [result.interval.width for result in self.groups.values()]
        return max(widths) if widths else math.inf
