"""Out-of-core columnar block storage for scrambles.

Everything upstream of this module thinks in *blocks*: the cursor walks
the scramble in 1024-block lookahead windows, the bitmap index decides
which blocks to fetch, and the unified ingest kernel consumes gathered
row slices.  This module extends that block discipline down to disk: a
:class:`ColumnStore` interface with two implementations —

* :class:`InMemoryStore`, wrapping the resident numpy arrays a
  :class:`~repro.fastframe.table.Table` already holds (the default;
  zero behavior change), and
* :class:`MmapBlockStore`, which persists each column as fixed-size
  block files (continuous float64, categorical int32 codes with a
  sidecar JSON dictionary) under a block directory and serves zero-copy
  ``np.memmap`` views of individual block files on demand.

Three mechanisms make the mmap path fast rather than merely possible:

* **Block cache** — an LRU over ``(store, column, block)`` keys with a
  byte budget, shared across every connection attached to the same
  store (and by default across stores), so N concurrent dashboards read
  each hot block from disk once.
* **Async prefetch** — a daemon reader thread warms the OS page cache
  (``madvise WILLNEED`` plus a strided touch) for the blocks the next
  scan window will want, scheduled from ``ScanCursor.next_window`` so
  I/O overlaps ingest exactly like block selection already overlaps it.
  All *accounting* stays on the scan thread, so the storage counters in
  :class:`~repro.fastframe.query.ExecutionMetrics` are deterministic.
* **Delta-fold neutrality** — gathers produce the same float64/int32
  bytes that were spilled, so execution over an mmap-backed scramble is
  byte-identical to in-memory execution at any parallelism × task_batch.

Environment knobs mirror the parallel layer: ``REPRO_STORAGE``
(``memory`` | ``mmap``) selects the backend for ``connect()`` and
``REPRO_CACHE_BYTES`` sets the default cache budget.
"""

from __future__ import annotations

import atexit
import json
import mmap as _mmap_module
import os
import shutil
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.fastframe.catalog import RangeBounds
from repro.fastframe.table import CategoricalColumn, Table

__all__ = [
    "BlockCache",
    "BlockStoreError",
    "ColumnStore",
    "InMemoryStore",
    "MmapBlockStore",
    "StorageStats",
    "attach_block_storage",
    "open_block_scramble",
    "open_block_store",
    "resolve_cache_bytes",
    "resolve_storage",
    "write_block_store",
    "DEFAULT_STORE_BLOCK_ROWS",
    "DEFAULT_CACHE_BYTES",
    "MANIFEST_NAME",
]

#: Rows per block file.  65 536 float64 rows is a 512 KiB file — large
#: enough that per-file overhead vanishes, small enough that a byte
#: budget produces meaningful LRU behavior on test-sized data.
DEFAULT_STORE_BLOCK_ROWS = 65536

#: Default block-cache budget when ``REPRO_CACHE_BYTES`` is unset.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Cap on cached entries regardless of byte budget: each cached block
#: holds an open file handle, and a whole test suite's worth of tiny
#: stores must not exhaust the process fd limit.
MAX_CACHE_ENTRIES = 2048

MANIFEST_NAME = "MANIFEST.json"
FORMAT_VERSION = 1
STORE_KIND = "repro-block-store"

_VALID_STORAGE = ("memory", "mmap")


class BlockStoreError(RuntimeError):
    """A block directory is missing, incomplete, or inconsistent."""


def resolve_storage(storage: str | None) -> str:
    """Effective storage backend: explicit argument, else ``REPRO_STORAGE``.

    Mirrors ``resolve_parallelism``: ``None`` defers to the environment,
    and the unset default is the in-memory backend.
    """
    if storage is None:
        storage = os.environ.get("REPRO_STORAGE") or "memory"
    storage = str(storage).lower()
    if storage not in _VALID_STORAGE:
        raise ValueError(
            f"unknown storage backend {storage!r}; expected one of {_VALID_STORAGE}"
        )
    return storage


def resolve_cache_bytes(cache_bytes: int | None) -> int:
    """Effective cache budget: explicit argument, else ``REPRO_CACHE_BYTES``."""
    if cache_bytes is None:
        raw = os.environ.get("REPRO_CACHE_BYTES")
        cache_bytes = int(raw) if raw else DEFAULT_CACHE_BYTES
    cache_bytes = int(cache_bytes)
    if cache_bytes < 1:
        raise ValueError(f"cache_bytes must be >= 1, got {cache_bytes}")
    return cache_bytes


@dataclass
class StorageStats:
    """Cumulative I/O counters for one store (scan-thread only).

    ``bytes_read``/``blocks_read`` charge at block-open granularity; the
    prefetch thread never touches these fields, so per-query deltas are
    deterministic at any parallelism.
    """

    blocks_read: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    prefetch_hits: int = 0
    #: Columns that were fully materialized via ``__array__``/``astype``
    #: (metadata builds over categorical codes do this; the value-gather
    #: path must not — the zero-copy benchmark flag checks this set).
    materialized_columns: set = field(default_factory=set)

    _FIELDS = ("blocks_read", "bytes_read", "cache_hits", "cache_evictions", "prefetch_hits")

    def counters(self) -> tuple[int, ...]:
        return tuple(getattr(self, name) for name in self._FIELDS)


class _StorageTracker:
    """Attributes a store's counter growth to ExecutionMetrics objects.

    ``drain(*metrics)`` adds the delta since the previous drain to each
    metrics object and re-bases, so one tracker can be drained once per
    window (live round visibility) without double counting.
    """

    def __init__(self, store: "MmapBlockStore | None") -> None:
        self._store = store
        self._base = store.stats.counters() if store is not None else None

    def drain(self, *metrics) -> None:
        if self._store is None:
            return
        current = self._store.stats.counters()
        deltas = [now - before for now, before in zip(current, self._base)]
        self._base = current
        if not any(deltas):
            return
        for target in metrics:
            for name, delta in zip(StorageStats._FIELDS, deltas):
                setattr(target, name, getattr(target, name) + delta)


def storage_tracker(scramble) -> _StorageTracker:
    """Tracker over a scramble's attached block store (no-op when in-memory)."""
    return _StorageTracker(getattr(scramble, "storage", None))


class BlockCache:
    """LRU over block ids with a byte budget, shared across connections.

    Entries are ``np.memmap`` views of whole block files; evicting an
    entry drops the view (and with it the file handle).  Gathers copy
    out of the views, so no reference ever escapes the cache and
    eviction is always safe.  All methods take the cache lock: demand
    loads run on the scan thread, but the prefetcher peeks membership.
    """

    def __init__(self, budget_bytes: int, max_entries: int = MAX_CACHE_ENTRIES) -> None:
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, tuple[np.ndarray, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: tuple) -> np.ndarray | None:
        """The cached view for ``key`` (promoted to MRU), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key: tuple, view: np.ndarray, nbytes: int) -> int:
        """Insert a view, evicting LRU entries past the budget.

        Returns the number of evictions this insert caused (charged to
        the inserting store's stats).
        """
        evicted = 0
        with self._lock:
            if key in self._entries:
                return 0
            self._entries[key] = (view, nbytes)
            self._bytes += nbytes
            while self._entries and (
                self._bytes > self.budget_bytes or len(self._entries) > self.max_entries
            ):
                victim_key, (_, victim_bytes) = self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                evicted += 1
                if victim_key == key:
                    break  # the new entry alone exceeds the budget
        return evicted

    def resize(self, budget_bytes: int) -> int:
        """Change the byte budget, evicting down to it.  Returns evictions."""
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        evicted = 0
        with self._lock:
            self.budget_bytes = int(budget_bytes)
            while self._entries and self._bytes > self.budget_bytes:
                _, (_, victim_bytes) = self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                evicted += 1
        return evicted

    def drop_store(self, token: str) -> None:
        """Evict every entry belonging to one store (store close)."""
        with self._lock:
            for key in [key for key in self._entries if key[0] == token]:
                _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes


_SHARED_CACHE: BlockCache | None = None
_SHARED_CACHE_LOCK = threading.Lock()


def shared_block_cache() -> BlockCache:
    """The process-wide default block cache (budget from REPRO_CACHE_BYTES)."""
    global _SHARED_CACHE
    with _SHARED_CACHE_LOCK:
        if _SHARED_CACHE is None:
            _SHARED_CACHE = BlockCache(resolve_cache_bytes(None))
        return _SHARED_CACHE


class ColumnStore:
    """Interface every storage backend implements.

    A store owns the bytes of one permuted table: column names and
    kinds, per-column value access, categorical dictionaries, and
    catalog range bounds.  ``continuous``/``codes`` return 1-D
    array-likes supporting numpy fancy indexing, which is all the
    gather, predicate, and metadata paths require.
    """

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    def continuous_columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def categorical_columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def continuous(self, name: str):
        raise NotImplementedError

    def codes(self, name: str):
        raise NotImplementedError

    def dictionary(self, name: str) -> tuple:
        raise NotImplementedError

    def bounds(self, name: str) -> RangeBounds:
        raise NotImplementedError


class InMemoryStore(ColumnStore):
    """The default backend: the table's resident numpy arrays, as-is."""

    def __init__(self, table: Table) -> None:
        self._table = table

    @property
    def num_rows(self) -> int:
        return self._table.num_rows

    def continuous_columns(self) -> tuple[str, ...]:
        return self._table.catalog.continuous_columns()

    def categorical_columns(self) -> tuple[str, ...]:
        return self._table.catalog.categorical_columns()

    def continuous(self, name: str) -> np.ndarray:
        return self._table.continuous(name)

    def codes(self, name: str) -> np.ndarray:
        return self._table.categorical(name).codes

    def dictionary(self, name: str) -> tuple:
        return self._table.categorical(name).dictionary

    def bounds(self, name: str) -> RangeBounds:
        return self._table.catalog.bounds(name)


class BlockedColumnArray:
    """1-D ndarray-like over one column's block files.

    Fancy indexing gathers through the block cache; each touched block
    is served as a zero-copy ``np.memmap`` view and only the requested
    rows are copied out (exactly what in-memory ``values[rows]`` copies).
    ``__array__`` materializes the full column — legitimate for one-time
    metadata builds (bitmap indexes, combined group codes) but flagged
    in the store stats so benchmarks can assert the value-gather path
    never does it.
    """

    def __init__(self, store: "MmapBlockStore", name: str, dtype: np.dtype) -> None:
        self._store = store
        self.name = name
        self.dtype = np.dtype(dtype)
        self.size = store.num_rows
        self.shape = (self.size,)
        self.ndim = 1

    def __len__(self) -> int:
        return self.size

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self.size)
            return self[np.arange(start, stop, step, dtype=np.int64)]
        if np.isscalar(item) or getattr(item, "ndim", None) == 0:
            row = int(item)
            if row < 0:
                row += self.size
            if not 0 <= row < self.size:
                raise IndexError(f"row {item} out of range for column of {self.size} rows")
            block_rows = self._store.block_rows
            block = self._store.block(self.name, row // block_rows)
            return block[row % block_rows]
        rows = np.asarray(item)
        if rows.dtype == bool:
            rows = np.flatnonzero(rows)
        return self._gather(rows.astype(np.int64, copy=False))

    def _gather(self, rows: np.ndarray) -> np.ndarray:
        out = np.empty(rows.size, dtype=self.dtype)
        if rows.size == 0:
            return out
        block_rows = self._store.block_rows
        block_ids = rows // block_rows
        # Window rows arrive as block-contiguous runs; gather run by run
        # so each cache lookup serves a whole run.
        cuts = np.flatnonzero(np.diff(block_ids)) + 1
        starts = np.concatenate([[0], cuts])
        stops = np.concatenate([cuts, [rows.size]])
        for start, stop in zip(starts, stops):
            block_id = int(block_ids[start])
            block = self._store.block(self.name, block_id)
            out[start:stop] = block[rows[start:stop] - block_id * block_rows]
        return out

    def __array__(self, dtype=None, copy=None):
        self._store.stats.materialized_columns.add(self.name)
        full = self._gather(np.arange(self.size, dtype=np.int64))
        if dtype is not None and np.dtype(dtype) != self.dtype:
            return full.astype(dtype)
        return full

    def astype(self, dtype, copy: bool = True) -> np.ndarray:
        return self.__array__(dtype)


def _block_file(directory: str, column: str, block_id: int) -> str:
    return os.path.join(directory, column, f"block-{block_id:06d}.bin")


def _dictionary_file(directory: str, column: str) -> str:
    return os.path.join(directory, column, "dictionary.json")


def _num_blocks(num_rows: int, block_rows: int) -> int:
    return -(-num_rows // block_rows)


def _encode_dictionary(dictionary: tuple) -> dict:
    values, types = [], []
    for value in dictionary:
        if isinstance(value, (bool, np.bool_)):
            raise BlockStoreError("boolean categorical dictionaries are not supported")
        if isinstance(value, (int, np.integer)):
            values.append(int(value))
            types.append("int")
        elif isinstance(value, (float, np.floating)):
            values.append(float(value))
            types.append("float")
        else:
            values.append(str(value))
            types.append("str")
    return {"values": values, "types": types}


def _decode_dictionary(payload: dict) -> tuple:
    casts = {"int": int, "float": float, "str": str}
    return tuple(
        casts[kind](value) for value, kind in zip(payload["values"], payload["types"])
    )


def write_block_store(
    directory: str | os.PathLike,
    scramble,
    block_rows: int = DEFAULT_STORE_BLOCK_ROWS,
) -> str:
    """Persist a scramble's permuted table as a block directory.

    Layout: one subdirectory per column holding fixed-size raw block
    files (``block-NNNNNN.bin``; the last block may be short) plus a
    ``dictionary.json`` sidecar for categorical columns, and a
    ``MANIFEST.json`` written last (via atomic rename) so a crashed
    writer leaves a directory that :func:`open_block_store` rejects
    instead of silently truncating.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    directory = os.fspath(directory)
    table = scramble.table
    if table.num_rows == 0:
        raise BlockStoreError("cannot write an empty scramble")
    os.makedirs(directory, exist_ok=True)
    num_rows = table.num_rows
    columns = []
    for name in table.catalog.continuous_columns():
        _write_column_blocks(
            directory, name, np.ascontiguousarray(table.continuous(name), dtype="<f8"),
            block_rows,
        )
        bounds = table.catalog.bounds(name)
        columns.append(
            {"name": name, "kind": "continuous", "dtype": "<f8",
             "bounds": [bounds.a, bounds.b]}
        )
    for name in table.catalog.categorical_columns():
        column = table.categorical(name)
        _write_column_blocks(
            directory, name, np.ascontiguousarray(column.codes, dtype="<i4"), block_rows
        )
        with open(_dictionary_file(directory, name), "w", encoding="utf-8") as handle:
            json.dump(_encode_dictionary(column.dictionary), handle)
        columns.append({"name": name, "kind": "categorical", "dtype": "<i4"})
    manifest = {
        "kind": STORE_KIND,
        "format": FORMAT_VERSION,
        "num_rows": num_rows,
        "block_rows": int(block_rows),
        "num_blocks": _num_blocks(num_rows, block_rows),
        "scramble_block_size": int(scramble.block_size),
        "columns": columns,
    }
    tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
    os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))
    return directory


def _write_column_blocks(
    directory: str, name: str, values: np.ndarray, block_rows: int
) -> None:
    if os.sep in name or name.startswith("."):
        raise BlockStoreError(f"column name {name!r} is not a valid block directory name")
    column_dir = os.path.join(directory, name)
    os.makedirs(column_dir, exist_ok=True)
    for block_id in range(_num_blocks(values.size, block_rows)):
        start = block_id * block_rows
        chunk = values[start : start + block_rows]
        chunk.tofile(_block_file(directory, name, block_id))


class MmapBlockStore(ColumnStore):
    """Columns persisted as block files, served as zero-copy mmap views.

    Opened via :func:`open_block_store` (which deduplicates instances by
    realpath so connections share one cache and one stats ledger).  The
    constructor validates the manifest and every expected block file's
    size up front: a partial directory fails loudly here, never as a
    silent short read later.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        cache: BlockCache | None = None,
        prefetch: bool = True,
    ) -> None:
        self.path = os.path.realpath(os.fspath(directory))
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        if not os.path.isfile(manifest_path):
            raise BlockStoreError(
                f"{self.path} is not a block store: missing {MANIFEST_NAME} "
                "(an interrupted write leaves no manifest)"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("kind") != STORE_KIND or manifest.get("format") != FORMAT_VERSION:
            raise BlockStoreError(
                f"{manifest_path} has kind={manifest.get('kind')!r} "
                f"format={manifest.get('format')!r}; expected "
                f"{STORE_KIND!r} format {FORMAT_VERSION}"
            )
        self.manifest = manifest
        self._num_rows = int(manifest["num_rows"])
        self.block_rows = int(manifest["block_rows"])
        self.num_blocks = int(manifest["num_blocks"])
        self.scramble_block_size = int(manifest["scramble_block_size"])
        self._columns: dict[str, dict] = {spec["name"]: spec for spec in manifest["columns"]}
        self._dictionaries: dict[str, tuple] = {}
        self.stats = StorageStats()
        self._cache = cache if cache is not None else shared_block_cache()
        self._private_cache = cache is not None
        #: Blocks scheduled for prefetch but not yet demanded; consumed
        #: (and counted as ``prefetch_hits``) on the scan thread.
        self._prefetch_marks: set[tuple[str, int]] = set()
        self._prefetcher = _Prefetcher(self) if prefetch else None
        self._validate_blocks()

    def _validate_blocks(self) -> None:
        for name, spec in self._columns.items():
            itemsize = np.dtype(spec["dtype"]).itemsize
            for block_id in range(self.num_blocks):
                path = _block_file(self.path, name, block_id)
                expected = self._block_length(block_id) * itemsize
                try:
                    actual = os.path.getsize(path)
                except OSError:
                    raise BlockStoreError(
                        f"partial block store at {self.path}: column {name!r} "
                        f"is missing block file {os.path.basename(path)}"
                    ) from None
                if actual != expected:
                    raise BlockStoreError(
                        f"partial block store at {self.path}: column {name!r} "
                        f"block {block_id} holds {actual} bytes, expected {expected}"
                    )
            if spec["kind"] == "categorical" and not os.path.isfile(
                _dictionary_file(self.path, name)
            ):
                raise BlockStoreError(
                    f"partial block store at {self.path}: column {name!r} "
                    "is missing its sidecar dictionary.json"
                )

    # -- ColumnStore interface -------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def continuous_columns(self) -> tuple[str, ...]:
        return tuple(n for n, s in self._columns.items() if s["kind"] == "continuous")

    def categorical_columns(self) -> tuple[str, ...]:
        return tuple(n for n, s in self._columns.items() if s["kind"] == "categorical")

    def continuous(self, name: str) -> BlockedColumnArray:
        spec = self._column_spec(name, "continuous")
        return BlockedColumnArray(self, name, np.dtype(spec["dtype"]))

    def codes(self, name: str) -> BlockedColumnArray:
        spec = self._column_spec(name, "categorical")
        return BlockedColumnArray(self, name, np.dtype(spec["dtype"]))

    def dictionary(self, name: str) -> tuple:
        self._column_spec(name, "categorical")
        if name not in self._dictionaries:
            with open(_dictionary_file(self.path, name), "r", encoding="utf-8") as handle:
                self._dictionaries[name] = _decode_dictionary(json.load(handle))
        return self._dictionaries[name]

    def bounds(self, name: str) -> RangeBounds:
        spec = self._column_spec(name, "continuous")
        return RangeBounds(*spec["bounds"])

    def _column_spec(self, name: str, kind: str) -> dict:
        spec = self._columns.get(name)
        if spec is None or spec["kind"] != kind:
            raise KeyError(
                f"no {kind} column {name!r} in block store {self.path}; "
                f"have {sorted(self._columns)}"
            )
        return spec

    # -- block access -----------------------------------------------------

    def _block_length(self, block_id: int) -> int:
        start = block_id * self.block_rows
        return min(start + self.block_rows, self._num_rows) - start

    def _open_block(self, name: str, block_id: int) -> np.memmap:
        return np.memmap(
            _block_file(self.path, name, block_id),
            dtype=np.dtype(self._columns[name]["dtype"]),
            mode="r",
            shape=(self._block_length(block_id),),
        )

    def block(self, name: str, block_id: int) -> np.ndarray:
        """Zero-copy view of one block, through the cache (scan thread)."""
        key = (self.path, name, block_id)
        view = self._cache.get(key)
        if view is None:
            view = self._open_block(name, block_id)
            self.stats.blocks_read += 1
            self.stats.bytes_read += view.nbytes
            self.stats.cache_evictions += self._cache.put(key, view, view.nbytes)
        else:
            self.stats.cache_hits += 1
        mark = (name, block_id)
        if mark in self._prefetch_marks:
            self._prefetch_marks.discard(mark)
            self.stats.prefetch_hits += 1
        return view

    def set_cache_budget(self, cache_bytes: int) -> None:
        """Give this store a private cache with the requested budget.

        Called when a connection passes an explicit ``cache_bytes``; the
        default shared cache is left alone so one tenant's budget choice
        cannot evict every other store's working set.
        """
        cache_bytes = resolve_cache_bytes(cache_bytes)
        if self._private_cache:
            self.stats.cache_evictions += self._cache.resize(cache_bytes)
        else:
            self._cache = BlockCache(cache_bytes)
            self._private_cache = True

    # -- prefetch ---------------------------------------------------------

    def prefetch_scramble_blocks(
        self, scramble_blocks: np.ndarray, scramble_block_size: int
    ) -> None:
        """Schedule page warming for the storage blocks a window will read.

        Called from the scan thread with the *next* window's scramble
        block ids (``ScanCursor.peek_window``).  Marks are recorded here
        and consumed by :meth:`block`, so ``prefetch_hits`` counts are
        independent of reader-thread timing.
        """
        if self._prefetcher is None:
            return
        scramble_blocks = np.asarray(scramble_blocks, dtype=np.int64)
        if scramble_blocks.size == 0:
            return
        first = scramble_blocks * scramble_block_size // self.block_rows
        last = np.minimum(
            (scramble_blocks + 1) * scramble_block_size - 1, self._num_rows - 1
        ) // self.block_rows
        block_ids = np.unique(np.concatenate([first, last]))
        fresh = []
        for block_id in block_ids.tolist():
            for name in self._columns:
                mark = (name, block_id)
                if mark in self._prefetch_marks:
                    continue
                if (self.path, name, block_id) in self._cache:
                    continue
                self._prefetch_marks.add(mark)
                fresh.append(mark)
        if fresh:
            self._prefetcher.schedule(fresh)

    def close(self) -> None:
        """Drop cached views and stop the prefetcher (idempotent)."""
        if self._prefetcher is not None:
            self._prefetcher.stop()
            self._prefetcher = None
        self._cache.drop_store(self.path)
        _OPEN_STORES.pop(self.path, None)


class _Prefetcher:
    """Daemon reader that warms the OS page cache for scheduled blocks.

    The thread keeps no shared counters and never mutates the block
    cache — its only effect is page residency, so demand reads stay
    deterministic while their I/O overlaps ingest.  A new schedule
    replaces any unprocessed one (the scan has moved on).
    """

    def __init__(self, store: MmapBlockStore) -> None:
        self._store = store
        self._cond = threading.Condition()
        self._pending: list[tuple[str, int]] | None = None
        self._stopped = False
        self._thread: threading.Thread | None = None

    def schedule(self, marks: list[tuple[str, int]]) -> None:
        with self._cond:
            if self._stopped:
                return
            self._pending = list(marks)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-block-prefetch", daemon=True
                )
                self._thread.start()
            self._cond.notify()

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._pending = None
            self._cond.notify()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while self._pending is None and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                marks, self._pending = self._pending, None
            for name, block_id in marks:
                try:
                    self._warm(name, block_id)
                except (OSError, ValueError):
                    pass  # advisory only; the demand read will surface errors

    def _warm(self, name: str, block_id: int) -> None:
        store = self._store
        if (store.path, name, block_id) in store._cache:
            return
        view = store._open_block(name, block_id)
        backing = getattr(view, "_mmap", None)
        advised = False
        if backing is not None and hasattr(backing, "madvise"):
            try:
                backing.madvise(_mmap_module.MADV_WILLNEED)
                advised = True
            except (AttributeError, OSError, ValueError):
                advised = False
        if not advised:
            # Strided touch: one read per page faults the block in.
            np.add.reduce(view.view(np.uint8)[:: _mmap_module.PAGESIZE or 4096])
        del view


_OPEN_STORES: dict[str, MmapBlockStore] = {}
_OPEN_STORES_LOCK = threading.Lock()


def open_block_store(
    directory: str | os.PathLike,
    cache_bytes: int | None = None,
    prefetch: bool = True,
) -> MmapBlockStore:
    """Open (or reuse) the store for a block directory.

    Instances are deduplicated by realpath: every connection over the
    same directory shares one block cache and one stats ledger — the
    cross-connection amortization the cache exists for.
    """
    path = os.path.realpath(os.fspath(directory))
    with _OPEN_STORES_LOCK:
        store = _OPEN_STORES.get(path)
        if store is None:
            store = MmapBlockStore(path, prefetch=prefetch)
            _OPEN_STORES[path] = store
    if cache_bytes is not None:
        store.set_cache_budget(cache_bytes)
    return store


def table_from_store(store: ColumnStore) -> Table:
    """Build a Table whose columns read through a store (no validation scan).

    Bounds come from the store's manifest and codes/values are served as
    store-backed array views, so construction is O(columns) — nothing
    faults the data in.
    """
    table = Table()
    for name in store.continuous_columns():
        values = store.continuous(name)
        table._check_length(name, len(values))
        table._continuous[name] = values
        table.catalog.register_continuous_bounds(name, store.bounds(name))
    for name in store.categorical_columns():
        codes = store.codes(name)
        table._check_length(name, len(codes))
        table._categorical[name] = CategoricalColumn(
            codes=codes, dictionary=store.dictionary(name)
        )
        table.catalog.register_categorical(name)
    return table


def open_block_scramble(
    directory: str | os.PathLike,
    cache_bytes: int | None = None,
    prefetch: bool = True,
):
    """Open a block directory as a fully out-of-core Scramble.

    The rows on disk are already permuted (the writer spilled a
    scramble), so no re-shuffle happens and no column is faulted in;
    the scramble's table serves store-backed views.  The result is
    read-only: ``insert_rows`` raises instead of silently diverging
    from the files.
    """
    from repro.fastframe.scramble import Scramble

    store = open_block_store(directory, cache_bytes=cache_bytes, prefetch=prefetch)
    return Scramble.from_storage(store, table_from_store(store))


_SPILL_DIRS: list[str] = []


def _cleanup_spill_dirs() -> None:
    for path in _SPILL_DIRS:
        shutil.rmtree(path, ignore_errors=True)


atexit.register(_cleanup_spill_dirs)


def attach_block_storage(
    scramble,
    directory: str | os.PathLike | None = None,
    cache_bytes: int | None = None,
    block_rows: int = DEFAULT_STORE_BLOCK_ROWS,
    prefetch: bool = True,
) -> MmapBlockStore:
    """Spill a scramble to a block directory and route gathers through it.

    The in-memory arrays stay in place (mutation via ``insert_rows``
    detaches the store and proceeds in memory), but every value/code
    gather on the query hot path reads through the mmap store — this is
    what ``REPRO_STORAGE=mmap`` turns on for every connection, letting
    the whole test suite replay out-of-core.  Idempotent: an already
    attached scramble keeps its store (the cache budget is still
    applied when given).
    """
    existing = getattr(scramble, "storage", None)
    if existing is not None:
        if cache_bytes is not None:
            existing.set_cache_budget(cache_bytes)
        return existing
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-blockstore-")
        _SPILL_DIRS.append(directory)
    write_block_store(directory, scramble, block_rows=block_rows)
    store = open_block_store(directory, cache_bytes=cache_bytes, prefetch=prefetch)
    scramble.attach_storage(store)
    return store
