"""COUNT confidence intervals and the unknown-N upper bound (§4.1).

A scramble row either belongs to a query's aggregate view or it does not;
the AVG of that 0/1 indicator over the whole scramble is the view's
selectivity σ_v.  Lemma 5 applies Hoeffding-Serfling with range ``[0, 1]``
to the scanned prefix to bound σ_v, which — multiplied by the scramble size
R — bounds the view's cardinality N (the COUNT aggregate).

Conservative AVG bounders consult the dataset size N, which is unknown when
a filter of unknown selectivity is applied.  Theorem 3 fixes this online:
spend ``(1 − α)·δ`` on the event that the one-sided selectivity bound N⁺
underestimates N, and ``α·δ`` on the CI computed *as if* the dataset had
size N⁺ — sound because every bounder here satisfies the dataset-size
monotonicity property (§3.3).  The paper fixes α = 0.99.

SUM CIs compose a COUNT CI with an AVG CI by union bound (§4.1); the
paper's ``[c_l·g_l, c_r·g_r]`` product assumes a non-negative mean, so
:func:`sum_interval` takes the interval hull over corner products, which is
the correct generalization for signed aggregates (documented deviation,
DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bounders.base import Interval
from repro.bounders.hoeffding import hoeffding_serfling_epsilon

__all__ = [
    "SelectivityState",
    "selectivity_interval",
    "count_interval",
    "count_interval_batch",
    "upper_bound_population",
    "upper_bound_population_batch",
    "sum_interval",
    "sum_interval_batch",
    "DEFAULT_ALPHA",
]

#: Weight α of Theorem 3's δ split; the paper uses 0.99 throughout §5,
#: "giving most of the weight to the confidence interval computation".
DEFAULT_ALPHA = 0.99

#: Batches at or below this size take a per-element Python-float mirror of
#: the vectorized program (same IEEE-754 ops in the same order, so the
#: results are bit-identical).  A round recomputing a few dirty views
#: spends more on numpy call dispatch than on arithmetic otherwise.
_SCALAR_DISPATCH_MAX = 16


@dataclass
class SelectivityState:
    """Covered-prefix counts for one aggregate view.

    Attributes
    ----------
    in_view:
        Rows seen that belong to the view (``m_v`` in Lemma 5).
    covered:
        Rows whose view membership is *settled*: rows actually read, plus
        rows of skipped blocks certified free of the view's group by the
        bitmap index (each contributes 0 to ``in_view``).  This is the
        ``r`` of Lemma 5.
    """

    in_view: int = 0
    covered: int = 0

    def observe(self, in_view: int, covered: int) -> None:
        """Fold a processed (or certified-skipped) span of rows."""
        if in_view > covered:
            raise ValueError(f"in_view ({in_view}) cannot exceed covered ({covered})")
        self.in_view += in_view
        self.covered += covered


def selectivity_interval(
    state: SelectivityState, scramble_rows: int, delta: float
) -> Interval:
    """Lemma 5: (1 − δ) CI for the view selectivity σ_v.

    ``σ̂_v ± sqrt(log(2/δ)/(2r) · (1 − (r − 1)/R))``, clipped to [0, 1].
    """
    r = state.covered
    if r == 0:
        return Interval(0.0, 1.0)
    eps = hoeffding_serfling_epsilon(
        r, scramble_rows, 0.0, 1.0, delta / 2.0, finite_population=True
    )
    estimate = state.in_view / r
    return Interval(max(estimate - eps, 0.0), min(estimate + eps, 1.0))


def count_interval(
    state: SelectivityState, scramble_rows: int, delta: float
) -> Interval:
    """(1 − δ) CI for the view cardinality N = σ_v · R (§4.1).

    Additionally clamped below by the rows already observed in the view (a
    deterministic lower bound) and above by R.
    """
    sel = selectivity_interval(state, scramble_rows, delta)
    lo = max(sel.lo * scramble_rows, float(state.in_view))
    hi = min(sel.hi * scramble_rows, float(scramble_rows))
    return Interval(lo, max(hi, lo))


def upper_bound_population(
    state: SelectivityState,
    scramble_rows: int,
    delta: float,
    alpha: float = DEFAULT_ALPHA,
) -> int:
    """Theorem 3's N⁺: a high-probability upper bound on the view size.

    ``N⁺ = (m_v/r + sqrt(log(1/((1 − α)δ))/(2r) · (1 − (r − 1)/R))) · R``,
    failing with probability at most ``(1 − α)·δ``.  The remaining ``α·δ``
    budget is what the caller should pass to the AVG bounder (use
    :meth:`repro.stats.delta.DeltaBudget.split_unknown_n`).

    Returns an integer clamped to ``[max(m_v, 1), R]``.
    """
    r = state.covered
    if r == 0:
        return scramble_rows
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    fpc = max(1.0 - (r - 1) / scramble_rows, 0.0)
    eps = math.sqrt(math.log(1.0 / ((1.0 - alpha) * delta)) / (2.0 * r) * fpc)
    n_plus = (state.in_view / r + eps) * scramble_rows
    n_plus_int = int(math.ceil(n_plus))
    return max(min(n_plus_int, scramble_rows), state.in_view, 1)


def count_interval_batch(
    in_view: np.ndarray, covered: np.ndarray, scramble_rows: int, delta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`count_interval` over per-view counter arrays.

    ``in_view`` / ``covered`` are the executor pool's selectivity counters;
    one Lemma 5 evaluation covers every view.  Views with ``covered == 0``
    get the trivial ``[0, R]``.
    """
    in_view = np.asarray(in_view, dtype=np.float64)
    covered = np.asarray(covered, dtype=np.float64)
    if in_view.size <= _SCALAR_DISPATCH_MAX:
        # Scalar-dispatch mirror: one lane of the batch program below,
        # transliterated to Python floats (bit-identical results).
        log_term = math.log(2.0 / delta)
        lo_out = np.empty(in_view.size, dtype=np.float64)
        hi_out = np.empty(in_view.size, dtype=np.float64)
        for position in range(in_view.size):
            m = float(in_view[position])
            r = float(covered[position])
            if r == 0.0:
                lo_out[position] = 0.0
                hi_out[position] = float(scramble_rows)
                continue
            r_safe = max(r, 1.0)
            m_eff = min(r_safe, float(scramble_rows))
            rho = max(1.0 - (m_eff - 1.0) / scramble_rows, 0.0)
            eps = math.sqrt(rho * log_term / (2.0 * m_eff))
            estimate = m / r_safe
            sel_lo = max(estimate - eps, 0.0)
            sel_hi = min(estimate + eps, 1.0)
            lo = max(sel_lo * scramble_rows, m)
            hi = min(sel_hi * scramble_rows, float(scramble_rows))
            lo_out[position] = lo
            hi_out[position] = max(hi, lo)
        return lo_out, hi_out
    r_safe = np.maximum(covered, 1.0)
    m_eff = np.minimum(r_safe, scramble_rows)
    rho = np.maximum(1.0 - (m_eff - 1.0) / scramble_rows, 0.0)
    eps = np.sqrt(rho * math.log(2.0 / delta) / (2.0 * m_eff))
    estimate = in_view / r_safe
    sel_lo = np.maximum(estimate - eps, 0.0)
    sel_hi = np.minimum(estimate + eps, 1.0)
    lo = np.maximum(sel_lo * scramble_rows, in_view)
    hi = np.minimum(sel_hi * scramble_rows, float(scramble_rows))
    hi = np.maximum(hi, lo)
    uncovered = covered == 0
    lo[uncovered] = 0.0
    hi[uncovered] = float(scramble_rows)
    return lo, hi


def upper_bound_population_batch(
    in_view: np.ndarray,
    covered: np.ndarray,
    scramble_rows: int,
    delta: float,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """Vectorized :func:`upper_bound_population` (int64 array of N⁺)."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    in_view = np.asarray(in_view, dtype=np.int64)
    covered = np.asarray(covered, dtype=np.int64)
    if in_view.size <= _SCALAR_DISPATCH_MAX:
        # Scalar-dispatch mirror of the batch program (bit-identical).
        log_term = math.log(1.0 / ((1.0 - alpha) * delta))
        out = np.empty(in_view.size, dtype=np.int64)
        for position in range(in_view.size):
            m = int(in_view[position])
            if int(covered[position]) == 0:
                out[position] = scramble_rows
                continue
            r = float(covered[position])
            r_safe = max(r, 1.0)
            fpc = max(1.0 - (r - 1.0) / scramble_rows, 0.0)
            eps = math.sqrt(log_term / (2.0 * r_safe) * fpc)
            n_plus = int(math.ceil((m / r_safe + eps) * scramble_rows))
            out[position] = max(min(n_plus, scramble_rows), max(m, 1))
        return out
    r = covered.astype(np.float64)
    r_safe = np.maximum(r, 1.0)
    fpc = np.maximum(1.0 - (r - 1.0) / scramble_rows, 0.0)
    eps = np.sqrt(math.log(1.0 / ((1.0 - alpha) * delta)) / (2.0 * r_safe) * fpc)
    n_plus = np.ceil((in_view / r_safe + eps) * scramble_rows).astype(np.int64)
    n_plus = np.maximum(np.minimum(n_plus, scramble_rows), np.maximum(in_view, 1))
    n_plus[covered == 0] = scramble_rows
    return n_plus


def sum_interval_batch(
    count_lo: np.ndarray,
    count_hi: np.ndarray,
    avg_lo: np.ndarray,
    avg_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`sum_interval`: interval hull over corner products."""
    corners = np.stack(
        (
            count_lo * avg_lo,
            count_lo * avg_hi,
            count_hi * avg_lo,
            count_hi * avg_hi,
        )
    )
    return corners.min(axis=0), corners.max(axis=0)


def sum_interval(count_ci: Interval, avg_ci: Interval) -> Interval:
    """(1 − δ) CI for SUM from a (1 − δ/2) COUNT CI and (1 − δ/2) AVG CI.

    SUM = COUNT · AVG, so on the (≥ 1 − δ) event that both input intervals
    hold, SUM lies in the product set ``{c·g : c ∈ count_ci, g ∈ avg_ci}``,
    whose hull is spanned by the corner products.  For a non-negative AVG
    this reduces to the paper's ``[c_l·g_l, c_r·g_r]``.
    """
    corners = [
        count_ci.lo * avg_ci.lo,
        count_ci.lo * avg_ci.hi,
        count_ci.hi * avg_ci.lo,
        count_ci.hi * avg_ci.hi,
    ]
    return Interval(min(corners), max(corners))
