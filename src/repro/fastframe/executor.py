"""The approximate query executor (§4): rounds, views, early termination.

:class:`ApproximateExecutor` runs a :class:`~repro.fastframe.query.Query`
against a :class:`~repro.fastframe.scramble.Scramble`:

1. The scramble is consumed in scan order from a random start position,
   in lookahead windows of 1024 blocks; the sampling strategy (Scan /
   ActiveSync / ActivePeek) decides which blocks of each window to fetch.
2. Each window's fetched rows, value arrays, combined group codes, and
   predicate masks are materialized **once** in a
   :class:`~repro.fastframe.window.WindowFrame`; every consuming query
   run slices its private view of the frame (its block mask is a subset
   of the frame's union), partitions by group, and updates its per-view
   error-bounder state, sample moments, and selectivity counters
   vectorized.  Under :func:`run_shared_scan` one frame serves every
   query of a dashboard batch, so value gathering is O(windows) instead
   of O(queries × windows).
3. Every ``round_rows`` rows read (B = 40,000 in the paper, §4.2), the
   executor recomputes per-group confidence intervals with OptStop's
   decayed error probability (Algorithm 5), folds them into each group's
   running intersection, refreshes the active-group set, and tests the
   stopping condition.  Rounds are *incremental* in the pool engine:
   only views whose counters changed since the last round (the pool's
   dirty mask) are recomputed — for unchanged views the decayed-δ
   interval is wider and the running-intersection fold a no-op, so
   skipping them is bit-identical.

Two engines implement identical semantics (the parity test-suite pins
their outputs to each other within floating-point tolerance):

* ``engine="pool"`` — the vectorized core: all per-view state lives in a
  struct-of-arrays :class:`~repro.fastframe.viewpool.ViewPool`; ingest is a
  few ``np.bincount`` passes per window and each round is a fixed number of
  array expressions over all views at once ("the per-view bounder state is
  updated vectorized", §4.2).
* ``engine="scalar"`` — the reference implementation: one ``_ViewState``
  object per view, Python loops over views.  Kept as the executable
  specification the pool engine is tested against, and for few-view
  workloads where the loop is the faster of the two.

The default ``engine="auto"`` dispatches per query: pool at or above
:data:`AUTO_POOL_THRESHOLD` aggregate views, scalar below.

Error-probability accounting (δ = 1e-15 by default, as in §5.2):
``δ → ÷ #aggregate-views (§4.1) → × 6/π²k⁻² per round (Alg. 5) →
Theorem 3 split (1 − α for N⁺, α for the CI) → δ/2 per CI side``.

Sampling-soundness model (the paper's, from Definition 4's discussion):
scanning any subset of a scramble chosen *without knowledge of the data
order* is equivalent to without-replacement sampling.  Block skipping
decisions depend only on bitmap presence of categorical values, never on
the aggregated column's values, so the rows read for a view while its
group is active form a uniform without-replacement sample from the view.
Per-group *covered-row* accounting feeds Lemma 5: a row counts as covered
for group g once it was either read, or skipped inside a block the bitmap
index certifies holds no tuple of g (such rows contribute 0 to the view).
While g is active, every block possibly containing g is fetched, so whole
windows are covered; while g is inactive (its stopping criterion already
met), its state is frozen and windows are not counted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bounders.base import ErrorBounder, Interval
from repro.fastframe.bitmap import BlockBitmapIndex
from repro.fastframe.count import (
    DEFAULT_ALPHA,
    SelectivityState,
    count_interval,
    count_interval_batch,
    sum_interval,
    sum_interval_batch,
    upper_bound_population,
    upper_bound_population_batch,
)
from repro.fastframe.hypergeometric import (
    hypergeometric_count_interval,
    hypergeometric_count_interval_batch,
    hypergeometric_upper_bound_population,
    hypergeometric_upper_bound_population_batch,
)
from repro.fastframe.query import (
    AggregateFunction,
    ExecutionMetrics,
    GroupResult,
    Query,
    QueryResult,
)
from repro.fastframe.scan import (
    SamplingStrategy,
    ScanContext,
    ScanCursor,
    ScanStrategy,
)
from repro.fastframe.scramble import Scramble
from repro.fastframe.kernels import IngestDelta, partition_ingest
from repro.fastframe.viewpool import ViewPool
from repro.fastframe.window import WindowFrame
from repro.stats.delta import DEFAULT_DELTA, DeltaBudget
from repro.stats.streaming import MomentState
from repro.stopping.conditions import GroupSnapshot, SamplesTaken, SnapshotColumns
from repro.stopping.optstop import RunningIntersection

__all__ = [
    "ApproximateExecutor",
    "QueryRun",
    "run_shared_scan",
    "DEFAULT_ROUND_ROWS",
    "COUNT_METHODS",
    "ENGINES",
]

#: Recompute bounds every 40,000 rows read, as in the paper (§4.2).
DEFAULT_ROUND_ROWS = 40_000

#: Selectivity/COUNT bounding methods: Lemma 5's Hoeffding-Serfling bound
#: (the paper's choice, "a simple strategy", §4.1) or exact hypergeometric
#: test inversion (the tailored alternative the paper mentions).  Each maps
#: to a ``(count_interval, upper_bound_population, count_interval_batch,
#: upper_bound_population_batch)`` tuple — scalar and vectorized flavours
#: with identical signatures and guarantees.
COUNT_METHODS = {
    "serfling": (
        count_interval,
        upper_bound_population,
        count_interval_batch,
        upper_bound_population_batch,
    ),
    "exact": (
        hypergeometric_count_interval,
        hypergeometric_upper_bound_population,
        hypergeometric_count_interval_batch,
        hypergeometric_upper_bound_population_batch,
    ),
}

#: Executor engines: ``"pool"`` is the vectorized struct-of-arrays core,
#: ``"scalar"`` the per-view-object reference implementation it is
#: parity-tested against, and ``"auto"`` (the default) picks per query:
#: pool at or above :data:`AUTO_POOL_THRESHOLD` views, scalar below, where
#: the constant-factor overhead of array machinery still loses to a short
#: Python loop.
ENGINES = ("auto", "pool", "scalar")

#: View count at which ``engine="auto"`` switches to the pool engine (the
#: measured crossover sits between 10 and 100 views; see PERFORMANCE.md).
AUTO_POOL_THRESHOLD = 32


@dataclass
class _ViewState:
    """All per-aggregate-view state the executor maintains."""

    key_codes: tuple[int, ...]
    bounder_state: object
    sample_moments: MomentState = field(default_factory=MomentState)
    all_read_moments: MomentState = field(default_factory=MomentState)
    selectivity: SelectivityState = field(default_factory=SelectivityState)
    running: RunningIntersection = field(default_factory=RunningIntersection)
    count_running: RunningIntersection = field(default_factory=RunningIntersection)
    interval: Interval = Interval(-np.inf, np.inf)
    count_iv: Interval = Interval(0.0, np.inf)
    active: bool = True
    exhausted: bool = False
    dropped: bool = False


class ApproximateExecutor:
    """Executes approximate aggregate queries with SSI guarantees.

    Parameters
    ----------
    scramble:
        The pre-shuffled table (Definition 4).
    bounder:
        Any SSI range-based error bounder; per-group states are created
        from it.
    strategy:
        Block-selection strategy; defaults to plain Scan.
    delta:
        Total error probability for the query (δ = 1e-15 in §5.2).
    round_rows:
        Rows read between bound recomputations (B in Algorithm 5).
    alpha:
        Theorem 3's split weight for the unknown-N bound (0.99 in §4.1).
    count_method:
        COUNT/selectivity bounding method, a key of :data:`COUNT_METHODS`:
        ``"serfling"`` (Lemma 5, the paper's default) or ``"exact"``
        (hypergeometric test inversion — tighter, more CPU per round).
    rng:
        Randomness for the scan start position.
    engine:
        ``"pool"`` for the vectorized struct-of-arrays core, ``"scalar"``
        for the per-view-object reference implementation, or ``"auto"``
        (default) to pick per query by view count.  Semantics are identical
        within floating-point tolerance.
    parallelism:
        Worker processes for window ingest (``None`` defers to the
        ``REPRO_PARALLELISM`` environment variable, then 1).  Above 1,
        :meth:`execute` pipelines the scan through
        :class:`~repro.fastframe.parallel.ParallelScanDriver`: block
        selection for the next window overlaps ingest of the current one,
        and per-query window slices are partitioned in worker processes
        over shared-memory frame buffers.  Results (and every metric
        except wall time) are bit-identical to serial execution.
    task_timeout:
        Per-worker-task deadline in seconds for parallel ingest
        (``None`` defers to ``REPRO_TASK_TIMEOUT``, then 60; ``0``
        disables).  Timed-out or crashed tasks are re-dispatched and,
        as a last resort, recomputed inline — still bit-identical.
    task_batch:
        Partitions batched into one worker task for parallel ingest
        (``None`` defers to ``REPRO_TASK_BATCH``, then auto: window
        partition count ÷ parallelism).  Batching amortizes IPC and
        fault-plan bookkeeping; deltas still fold in serial (window,
        query) order, so results are bit-identical at any batch size.
    round_cadence:
        Adaptive OptStop round cadence for the pool engine (default 1
        preserves the every-round behavior byte-for-byte).  At ``k > 1``
        only every k-th round is a *full* round; in between, views the
        stopping condition certifies as far from their target
        (:meth:`~repro.stopping.conditions.StoppingCondition.far_mask`)
        keep their last certified interval and stay dirty.  Deferring a
        recompute is always sound — the old interval remains a valid
        1−δ bound and the running intersection only ever narrows — so
        stopping can fire later, never wrongly.
    """

    def __init__(
        self,
        scramble: Scramble,
        bounder: ErrorBounder,
        strategy: SamplingStrategy | None = None,
        delta: float = DEFAULT_DELTA,
        round_rows: int = DEFAULT_ROUND_ROWS,
        alpha: float = DEFAULT_ALPHA,
        count_method: str = "serfling",
        rng: np.random.Generator | None = None,
        engine: str = "auto",
        parallelism: int | None = None,
        task_timeout: float | None = None,
        task_batch: int | None = None,
        round_cadence: int = 1,
    ) -> None:
        if count_method not in COUNT_METHODS:
            raise ValueError(
                f"unknown count_method {count_method!r}; "
                f"expected one of {sorted(COUNT_METHODS)}"
            )
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if round_cadence < 1:
            raise ValueError(
                f"round_cadence must be >= 1, got {round_cadence}"
            )
        self.scramble = scramble
        self.bounder = bounder
        self.strategy = strategy or ScanStrategy()
        self.delta = delta
        self.round_rows = round_rows
        self.alpha = alpha
        self.count_method = count_method
        self.engine = engine
        self.parallelism = parallelism
        self.task_timeout = task_timeout
        self.task_batch = task_batch
        self.round_cadence = int(round_cadence)
        (
            self._count_interval,
            self._upper_bound_population,
            self._count_interval_batch,
            self._upper_bound_population_batch,
        ) = COUNT_METHODS[count_method]
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    # Metadata (bitmap indexes, group domains) — catalog-style state a
    # deployed system builds once at load time.  Cached on the *scramble*
    # so it is shared by every executor (any bounder/strategy combination)
    # over the same data, exactly like a real system's load-time indexes.
    # ------------------------------------------------------------------

    def index_for(self, column: str) -> BlockBitmapIndex:
        """The (lazily built, scramble-cached) bitmap index for a column."""
        cache = self.scramble.metadata_cache
        key = ("bitmap", column)
        if key not in cache:
            cache[key] = BlockBitmapIndex(self.scramble, column)
        return cache[key]

    def _group_domain(self, group_by: tuple[str, ...]) -> np.ndarray:
        """Combined codes of the groups actually present in the data.

        Cached per GROUP BY column set.  A real system reads this from its
        dictionary/bitmap metadata; it is not charged to query metrics.
        """
        cache = self.scramble.metadata_cache
        key = ("domain", group_by)
        if key not in cache:
            combined = self._combined_codes(group_by, rows=None)
            cache[key] = np.unique(combined)
        return cache[key]

    def _cardinalities(self, group_by: tuple[str, ...]) -> tuple[int, ...]:
        return tuple(
            self.scramble.table.categorical(column).cardinality for column in group_by
        )

    def _combined_codes(
        self, group_by: tuple[str, ...], rows: np.ndarray | None
    ) -> np.ndarray:
        """Row-aligned combined group codes (mixed-radix over the columns).

        The full-table array is computed once per GROUP BY column set and
        cached on the scramble (invalidated by inserts, like the bitmap
        indexes); per-window calls just slice it.
        """
        if not group_by:
            length = self.scramble.num_rows if rows is None else len(rows)
            return np.zeros(length, dtype=np.int64)
        cache = self.scramble.metadata_cache
        key = ("combined", group_by)
        if key not in cache:
            combined = None
            # column_codes reads through the attached block store when one
            # is present; this is a one-time load-level metadata build (the
            # array is cached on the scramble), not a per-window gather.
            for column, card in zip(group_by, self._cardinalities(group_by)):
                codes = self.scramble.column_codes(column)
                combined = (
                    codes.astype(np.int64)
                    if combined is None
                    else combined * card + np.asarray(codes)
                )
            cache[key] = combined
        full = cache[key]
        return full if rows is None else full[rows]

    def _split_combined(
        self, combined: int, group_by: tuple[str, ...]
    ) -> tuple[int, ...]:
        """Invert the mixed-radix combination back to per-column codes."""
        if not group_by:
            return ()
        cards = self._cardinalities(group_by)
        codes = []
        for card in reversed(cards):
            codes.append(combined % card)
            combined //= card
        return tuple(reversed(codes))

    def _decode_key(self, codes: tuple[int, ...], group_by: tuple[str, ...]) -> tuple:
        return tuple(
            self.scramble.table.categorical(column).dictionary[code]
            for column, code in zip(group_by, codes)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        start_block: int | None = None,
        parallelism: int | None = None,
    ) -> QueryResult:
        """Run a query to its stopping condition (or data exhaustion).

        ``parallelism`` overrides the executor-level knob for this one
        execution (``None`` inherits it); above 1 the scan is driven by
        the parallel ingest pipeline, with bit-identical results — the
        executor's ``task_timeout`` bounds each worker task's deadline
        (recovery falls back to inline recompute, still bit-identical).
        """
        from repro.fastframe.parallel import ParallelScanDriver, resolve_parallelism

        run = QueryRun(self, query)
        cursor = self.cursor(start_block, window_blocks=run.window_blocks)
        workers = resolve_parallelism(
            self.parallelism if parallelism is None else parallelism
        )
        if workers > 1:
            ParallelScanDriver(
                [run],
                cursor,
                parallelism=workers,
                solo=True,
                task_timeout=self.task_timeout,
                task_batch=self.task_batch,
            ).run()
        else:
            for window, at_end in cursor.windows():
                run.feed(window, at_end)
                if run.finished:
                    break
        return run.finalize()

    def cursor(
        self, start_block: int | None = None, window_blocks: int | None = None
    ) -> ScanCursor:
        """A fresh scan cursor (random start position unless pinned)."""
        if start_block is None:
            start_block = int(self.rng.integers(self.scramble.num_blocks))
        return ScanCursor(
            self.scramble,
            start_block,
            window_blocks or self.strategy.window_blocks,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_value_column(
        self, query: Query
    ) -> tuple[Callable[[np.ndarray], np.ndarray] | None, tuple[float, float]]:
        """Value accessor + range bounds for the aggregated column.

        Accepts a continuous column name or any expression object exposing
        ``evaluate(table, rows)`` and ``range_bounds(bounds_by_column)``
        (see :mod:`repro.expressions`, Appendix B).
        """
        table = self.scramble.table
        if query.aggregate is AggregateFunction.COUNT:
            return None, (0.0, 1.0)
        column = query.column
        if isinstance(column, str):
            bounds = table.catalog.bounds(column)
            # The gather provider: store-backed (zero-copy mmap block
            # views) when the scramble has storage attached, the resident
            # array otherwise — identical bytes either way.
            values = self.scramble.column_values(column)
            return (lambda rows: values[rows]), (bounds.a, bounds.b)
        bounds_by_column = {
            name: table.catalog.bounds(name) for name in column.columns()
        }
        derived = column.range_bounds(bounds_by_column)
        return (lambda rows: column.evaluate(table, rows)), (derived.a, derived.b)

    def _ingest_scalar_delta(
        self,
        query: Query,
        views: dict[int, _ViewState],
        domain: np.ndarray,
        delta: IngestDelta,
        window_rows: int,
        freezes_groups: bool,
        bounder: ErrorBounder | None = None,
    ) -> None:
        """Fold one partitioned window slice into the per-view states.

        The scalar mirror of :meth:`ViewPool.apply_ingest`: it consumes
        the same :class:`IngestDelta` the fused
        :func:`~repro.fastframe.kernels.partition_ingest` kernel produces
        for the pool engine, so the two engines share every byte of
        slicing/gather/sort arithmetic and differ only in how per-view
        state is stored.  The delta's ``view_idx`` is sorted with ties in
        stream order, so each view's value segment arrives in exactly the
        order the seed's per-view loop fed it (``delta.values`` is
        ``None`` for COUNT queries, which only need segment lengths).
        """
        bounder = self.bounder if bounder is None else bounder
        needs_values = query.aggregate is not AggregateFunction.COUNT
        segments: dict[int, np.ndarray | int] = {}
        if delta.n_in_view:
            view_idx = delta.view_idx
            boundaries = np.flatnonzero(np.diff(view_idx)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [view_idx.size]))
            for start, end in zip(starts, ends):
                segments[int(domain[view_idx[start]])] = (
                    delta.values[start:end] if needs_values else int(end - start)
                )

        for code, view in views.items():
            if view.dropped or view.exhausted:
                continue
            segment = segments.get(code)
            if needs_values:
                values = segment
                in_view = 0 if values is None else values.size
                if in_view:
                    view.all_read_moments.update_batch(values)
            else:
                values = None
                in_view = 0 if segment is None else int(segment)
                if in_view:
                    view.all_read_moments.count += in_view
            if freezes_groups and not view.active:
                continue  # frozen: rows stay unsettled for this view
            view.selectivity.observe(in_view, window_rows)
            if in_view and needs_values:
                view.sample_moments.update_batch(values)
                bounder.update_batch(view.bounder_state, values)

    def _recompute_bounds(
        self,
        query: Query,
        views: dict[int, _ViewState],
        bounds: tuple[float, float],
        view_budget: DeltaBudget,
        round_index: int | None,
        bounder: ErrorBounder | None = None,
    ) -> int:
        """One OptStop round: per-view CIs at the decayed δ (Algorithm 5).

        Budget layout within a round: the COUNT interval (also used to drop
        certified-empty views) and the value interval each receive half the
        round budget; the value half is further split per Theorem 3
        (``(1 − α)`` for N⁺, α for the bounder CI, δ/2 per side inside
        ``confidence_interval``).

        ``round_index=None`` is the fixed-sample-count mode (condition Ê):
        the single end-of-run computation at the full, undecayed per-view
        budget, covering every surviving view regardless of activity.

        Returns the number of views whose bounds were recomputed.
        """
        a, b = bounds
        bounder = self.bounder if bounder is None else bounder
        scramble_rows = self.scramble.num_rows
        single_shot = round_index is None
        round_budget = (
            view_budget if single_shot else view_budget.for_round(round_index)
        )
        recomputed = 0
        for view in views.values():
            if view.dropped or view.exhausted:
                continue
            if (
                not single_shot
                and self.strategy.uses_active_groups
                and not view.active
            ):
                continue  # frozen views keep their last certified interval
            recomputed += 1
            if query.aggregate is AggregateFunction.COUNT:
                count_budget, avg_budget = round_budget, None
            else:
                count_budget = avg_budget = round_budget.split_even(2)
            view.count_iv = view.count_running.fold(
                self._count_interval(view.selectivity, scramble_rows, count_budget.delta)
            )
            if view.count_iv.hi < 1.0:
                # Certified empty: the view contributes no row, so its
                # aggregate does not exist in the exact answer either.
                view.dropped = True
                continue
            if query.aggregate is AggregateFunction.COUNT:
                view.interval = view.count_iv
                continue
            _, ci_budget = avg_budget.split_unknown_n(self.alpha)
            n_plus = self._upper_bound_population(
                view.selectivity, scramble_rows, avg_budget.delta, alpha=self.alpha
            )
            avg_iv = view.running.fold(
                bounder.confidence_interval(
                    view.bounder_state, a, b, n_plus, ci_budget.delta
                )
            )
            if query.aggregate is AggregateFunction.SUM:
                view.interval = sum_interval(view.count_iv, avg_iv)
            else:
                # AVG — and the quantile family, whose bounder interval
                # already certifies the view-level aggregate directly.
                view.interval = avg_iv
        return recomputed

    def _snapshots(
        self,
        views: dict[int, _ViewState],
        bounds: tuple[float, float],
        query: Query | None = None,
        bounder: ErrorBounder | None = None,
    ) -> dict[int, GroupSnapshot]:
        a, b = bounds
        snapshots = {}
        for code, view in views.items():
            if view.dropped:
                continue
            interval = view.interval
            if not np.isfinite(interval.lo) or not np.isfinite(interval.hi):
                # Clamp per endpoint: a half-finite interval keeps its
                # certified finite bound; only the trivial side falls back
                # to the value range.
                interval = Interval(
                    interval.lo if np.isfinite(interval.lo) else a,
                    interval.hi if np.isfinite(interval.hi) else b,
                )
            estimate = self._estimate(view, interval, query, bounder)
            snapshots[code] = GroupSnapshot(
                interval=interval,
                estimate=estimate,
                samples=view.sample_moments.count,
                exhausted=view.exhausted,
            )
        return snapshots

    def _estimate(
        self,
        view: _ViewState,
        interval: Interval,
        query: Query | None = None,
        bounder: ErrorBounder | None = None,
    ) -> float:
        if view.sample_moments.count > 0:
            if query is not None and query.aggregate.is_quantile:
                return (self.bounder if bounder is None else bounder).estimate(
                    view.bounder_state
                )
            return view.sample_moments.mean
        return interval.midpoint

    def _refresh_active(
        self,
        query: Query,
        views: dict[int, _ViewState],
        snapshots: dict[int, GroupSnapshot],
    ) -> None:
        active = query.stopping.active_groups(snapshots)
        for code, view in views.items():
            if view.dropped or view.exhausted:
                view.active = False
                continue
            view.active = code in active

    def _finalize_exhausted(
        self,
        query: Query,
        views: dict[int, _ViewState],
        bounder: ErrorBounder | None = None,
    ) -> None:
        """Mark views whose every row is settled; their aggregates are exact."""
        bounder = self.bounder if bounder is None else bounder
        scramble_rows = self.scramble.num_rows
        for view in views.values():
            if view.dropped:
                continue
            if view.selectivity.covered >= scramble_rows:
                view.exhausted = True
                if view.selectivity.in_view == 0:
                    view.dropped = True
                    continue
                exact_count = float(view.selectivity.in_view)
                view.count_iv = Interval(exact_count, exact_count)
                if query.aggregate is AggregateFunction.COUNT:
                    view.interval = view.count_iv
                elif query.aggregate is AggregateFunction.AVG:
                    exact = view.all_read_moments.mean
                    view.interval = Interval(exact, exact)
                elif query.aggregate.is_quantile:
                    # Covered-row accounting only advances while the view
                    # settles, so exhaustion implies the bounder state holds
                    # the full view multiset: its sample quantile IS the
                    # population quantile.
                    exact = bounder.estimate(view.bounder_state)
                    view.interval = Interval(exact, exact)
                else:
                    exact = view.all_read_moments.mean * exact_count
                    view.interval = Interval(exact, exact)

    def _group_result(
        self,
        query: Query,
        view: _ViewState,
        group_by: tuple[str, ...],
        bounder: ErrorBounder | None = None,
    ) -> GroupResult:
        interval = view.interval
        if not np.isfinite(interval.lo) or not np.isfinite(interval.hi):
            # Per-endpoint: keep a certified finite bound on one side even
            # when the other side is still trivial.
            interval = Interval(
                interval.lo if np.isfinite(interval.lo) else -np.inf,
                interval.hi if np.isfinite(interval.hi) else np.inf,
            )
        estimate = self._estimate(view, interval, query, bounder)
        count_estimate = (
            view.selectivity.in_view
            / max(view.selectivity.covered, 1)
            * self.scramble.num_rows
        )
        if query.aggregate is AggregateFunction.COUNT:
            estimate = count_estimate
        elif query.aggregate is AggregateFunction.SUM and view.sample_moments.count:
            estimate = view.sample_moments.mean * count_estimate
        return GroupResult(
            key=self._decode_key(view.key_codes, group_by),
            estimate=estimate,
            interval=interval,
            count_interval=view.count_iv,
            samples=view.sample_moments.count,
            exhausted=view.exhausted,
        )

    # ------------------------------------------------------------------
    # Pool-engine internals — array mirrors of the scalar methods above.
    # Every step is a fixed number of numpy expressions over all views.
    # ------------------------------------------------------------------

    def _recompute_bounds_pool(
        self,
        query: Query,
        pool: ViewPool,
        bounds: tuple[float, float],
        view_budget: DeltaBudget,
        round_index: int | None,
        defer: np.ndarray | None = None,
        bounder: ErrorBounder | None = None,
    ) -> int:
        """One OptStop round over the dirty slice of the pool (Algorithm 5).

        Incremental rounds: only rows whose counters changed since their
        last recomputation (``pool.dirty``) are touched — a clean row's
        interval at the later round's smaller decayed δ would be wider,
        so its running-intersection fold is a no-op and the last certified
        interval stands.  ``round_index=None`` (the fixed-sample-count
        single shot) recomputes every surviving view regardless of the
        dirty mask.  ``defer`` (the adaptive round cadence) additionally
        skips the masked rows *without clearing their dirty flag*, so the
        next undeferred round brings them current.  Returns the number of
        pool rows recomputed.
        """
        a, b = bounds
        bounder = self.bounder if bounder is None else bounder
        scramble_rows = self.scramble.num_rows
        single_shot = round_index is None
        round_budget = (
            view_budget if single_shot else view_budget.for_round(round_index)
        )
        recompute = ~pool.dropped & ~pool.exhausted
        if not single_shot:
            recompute &= pool.dirty
            if self.strategy.uses_active_groups:
                recompute &= pool.active
            if defer is not None:
                recompute &= ~defer
        idx = np.flatnonzero(recompute)
        if idx.size == 0:
            return 0
        # These rows' bounds are now being brought current; their snapshot
        # columns go stale the moment the new intervals land.
        pool.dirty[idx] = False
        pool.snap_dirty[idx] = True
        recomputed = int(idx.size)
        if query.aggregate is AggregateFunction.COUNT:
            count_budget, avg_budget = round_budget, None
        else:
            count_budget = avg_budget = round_budget.split_even(2)
        count_lo, count_hi = self._count_interval_batch(
            pool.in_view[idx], pool.covered[idx], scramble_rows, count_budget.delta
        )
        count_lo, count_hi = pool.fold_count(idx, count_lo, count_hi)
        pool.civ_lo[idx] = count_lo
        pool.civ_hi[idx] = count_hi
        # Certified empty: the view contributes no row, so its aggregate
        # does not exist in the exact answer either.
        empty = count_hi < 1.0
        if empty.any():
            pool.dropped[idx[empty]] = True
            idx = idx[~empty]
            count_lo = count_lo[~empty]
            count_hi = count_hi[~empty]
            if idx.size == 0:
                return recomputed
        if query.aggregate is AggregateFunction.COUNT:
            pool.iv_lo[idx] = count_lo
            pool.iv_hi[idx] = count_hi
            return recomputed
        _, ci_budget = avg_budget.split_unknown_n(self.alpha)
        n_plus = self._upper_bound_population_batch(
            pool.in_view[idx], pool.covered[idx], scramble_rows,
            avg_budget.delta, alpha=self.alpha,
        )
        avg_lo, avg_hi = bounder.confidence_interval_batch(
            pool.bounder_pool, a, b, n_plus, ci_budget.delta, indices=idx
        )
        avg_lo, avg_hi = pool.fold_value(idx, avg_lo, avg_hi)
        if query.aggregate is AggregateFunction.SUM:
            sum_lo, sum_hi = sum_interval_batch(count_lo, count_hi, avg_lo, avg_hi)
            pool.iv_lo[idx] = sum_lo
            pool.iv_hi[idx] = sum_hi
        else:
            # AVG — and the quantile family, whose bounder interval already
            # certifies the view-level aggregate directly.
            pool.iv_lo[idx] = avg_lo
            pool.iv_hi[idx] = avg_hi
        return recomputed

    def _snapshot_columns(
        self, pool: ViewPool, bounds: tuple[float, float]
    ) -> SnapshotColumns:
        """Array mirror of :meth:`_snapshots` over the non-dropped views."""
        a, b = bounds
        return pool.snapshot_columns(a, b)

    def _refresh_active_pool(
        self, query: Query, pool: ViewPool, columns: SnapshotColumns
    ) -> None:
        active = query.stopping.active_mask(columns)
        pool.active[:] = False
        pool.active[columns.rows] = active & ~pool.exhausted[columns.rows]

    def _finalize_exhausted_pool(
        self, query: Query, pool: ViewPool, bounder: ErrorBounder | None = None
    ) -> None:
        """Mark views whose every row is settled; their aggregates are exact."""
        bounder = self.bounder if bounder is None else bounder
        scramble_rows = self.scramble.num_rows
        done = ~pool.dropped & (pool.covered >= scramble_rows)
        if not done.any():
            return
        pool.exhausted |= done
        pool.dropped |= done & (pool.in_view == 0)
        pool.snap_dirty |= done  # exact intervals land below
        idx = np.flatnonzero(done & ~pool.dropped)
        if idx.size == 0:
            return
        exact_count = pool.in_view[idx].astype(np.float64)
        pool.civ_lo[idx] = exact_count
        pool.civ_hi[idx] = exact_count
        if query.aggregate is AggregateFunction.COUNT:
            exact = exact_count
        elif query.aggregate is AggregateFunction.AVG:
            exact = pool.all_read.mean[idx]
        elif query.aggregate.is_quantile:
            # Covered rows only advance while the view settles, so the
            # bounder pool holds the exhausted views' full row multisets:
            # their sample quantiles ARE the population quantiles.
            exact = bounder.estimate_batch(pool.bounder_pool, indices=idx)
        else:
            exact = pool.all_read.mean[idx] * exact_count
        pool.iv_lo[idx] = exact
        pool.iv_hi[idx] = exact

    def _pool_results(
        self,
        query: Query,
        pool: ViewPool,
        group_by: tuple[str, ...],
        bounder: ErrorBounder | None = None,
    ) -> dict:
        """Materialize per-group results (the only O(views) Python loop)."""
        bounder = self.bounder if bounder is None else bounder
        live = np.flatnonzero(~pool.dropped)
        lo = pool.iv_lo[live]
        hi = pool.iv_hi[live]
        # Per-endpoint clamp: a half-finite interval keeps its certified
        # finite bound; only the trivial side is widened.
        lo = np.where(np.isfinite(lo), lo, -np.inf)
        hi = np.where(np.isfinite(hi), hi, np.inf)
        samples = pool.sample.count[live]
        count_estimate = (
            pool.in_view[live]
            / np.maximum(pool.covered[live], 1)
            * self.scramble.num_rows
        )
        if query.aggregate is AggregateFunction.COUNT:
            estimate = count_estimate
        elif query.aggregate.is_quantile:
            estimate = np.where(
                samples > 0,
                bounder.estimate_batch(pool.bounder_pool, indices=live),
                0.5 * (lo + hi),
            )
        else:
            estimate = np.where(
                samples > 0, pool.sample.mean[live], 0.5 * (lo + hi)
            )
            if query.aggregate is AggregateFunction.SUM:
                estimate = np.where(
                    samples > 0, pool.sample.mean[live] * count_estimate, estimate
                )
        groups = {}
        for position, row in enumerate(live):
            key = self._decode_key(pool.key_codes[row], group_by)
            groups[key] = GroupResult(
                key=key,
                estimate=float(estimate[position]),
                interval=Interval(float(lo[position]), float(hi[position])),
                count_interval=Interval(
                    float(pool.civ_lo[row]), float(pool.civ_hi[row])
                ),
                samples=int(samples[position]),
                exhausted=bool(pool.exhausted[row]),
            )
        return groups


class QueryRun:
    """The steppable execution state of one query over a scramble.

    A run is the executor's unit of progress: it owns the per-view state
    (a :class:`~repro.fastframe.viewpool.ViewPool` or the scalar
    ``_ViewState`` dictionary, per the resolved engine), the δ budget, and
    the round counters — but *not* the scan position.  Each window is
    processed in two phases: :meth:`select_blocks` computes the run's
    block-fetch mask, then :meth:`consume` slices the run's private view
    out of a materialized :class:`~repro.fastframe.window.WindowFrame`.
    That split makes the same state machine serve two drivers:

    * :meth:`ApproximateExecutor.execute` (and the connection's
      ``result()``/``rounds()`` paths) — one run, one private
      :class:`~repro.fastframe.scan.ScanCursor`; :meth:`feed` builds a
      frame over the run's own mask and consumes it;
    * :func:`run_shared_scan` — many runs (one per dashboard query) fed
      from a **single shared cursor**: the driver unions the runs' masks,
      materializes one frame per window (value arrays, combined group
      codes, predicate masks gathered once), and every run consumes its
      slice, retiring independently when its stopping condition fires.

    Because a run consumes every window exactly as the solo loop would
    (block selection, ingest order, and round cadence are all computed
    from its own state, and the frame's union preserves scan order),
    feeding N runs from one cursor produces bitwise the same per-query
    results as N sequential executions from the same start block — the
    parity suite pins this.
    """

    def __init__(
        self, executor: ApproximateExecutor, query: Query
    ) -> None:
        ex = executor
        self.executor = ex
        self.query = query
        self.metrics = ExecutionMetrics()
        self._start_time = time.perf_counter()

        # The quantile family certifies order statistics, not means, so
        # each MEDIAN/PERCENTILE query gets its own DKW-inversion bounder
        # at the query's level p; everything else shares the executor's.
        if query.aggregate.is_quantile:
            from repro.bounders.quantile import QuantileBounder

            self.bounder: ErrorBounder = QuantileBounder(query.quantile_p)
        else:
            self.bounder = ex.bounder

        self.values_of, self.bounds = ex._resolve_value_column(query)
        # Frame memoization key for the aggregated column: queries over the
        # same named column share one gathered value array per window.
        if query.aggregate is AggregateFunction.COUNT:
            self.value_key = None
        elif isinstance(query.column, str):
            self.value_key = ("column", query.column)
        else:
            self.value_key = ("expression", id(query.column))
        self.group_by = query.group_by
        self.domain = ex._group_domain(self.group_by)
        self.indexes = {
            column: ex.index_for(column) for column in self.group_by
        }
        self.predicate_requirements = query.predicate.categorical_requirements(
            ex.scramble.table
        )
        for column in self.predicate_requirements:
            self.indexes.setdefault(column, ex.index_for(column))

        engine = ex.engine
        if engine == "auto":
            engine = "pool" if self.domain.size >= AUTO_POOL_THRESHOLD else "scalar"
        self.engine = engine
        self.strategy = ex.strategy
        self.uses_active = ex.strategy.uses_active_groups
        self.freezes_groups = self.uses_active and bool(self.group_by)
        # Condition Ê: with a fixed requested sample count, Algorithm 5's
        # δ-decay is unnecessary (§4.2) — rounds only check sample counts,
        # and a single full-budget CI is issued at the end of the run.
        self.fixed_sample_mode = isinstance(query.stopping, SamplesTaken)

        if engine == "pool":
            key_codes = [
                ex._split_combined(int(code), self.group_by)
                for code in self.domain
            ]
            self.pool: ViewPool | None = ViewPool.build(
                self.domain, key_codes, self.bounder
            )
            if query.aggregate.is_quantile:
                pool, bounder = self.pool, self.bounder
                self.pool.estimator = lambda rows: bounder.estimate_batch(
                    pool.bounder_pool, indices=rows
                )
            self.views: dict[int, _ViewState] | None = None
            num_views = max(self.pool.size, 1)
            if self.group_by:
                # Warm the scramble-cached full-table combined codes now so
                # per-window frame slices never pay the build.
                ex._combined_codes(self.group_by, rows=None)
        else:
            self.pool = None
            self.views = {
                int(code): _ViewState(
                    key_codes=ex._split_combined(int(code), self.group_by),
                    bounder_state=self.bounder.init_state(),
                )
                for code in self.domain
            }
            num_views = max(len(self.views), 1)
        self.view_budget = DeltaBudget(ex.delta).split_even(num_views)

        self.rows_since_bound = 0
        self.round_index = 0
        self.satisfied = False
        self._scan_ended = False
        self._finalized: QueryResult | None = None
        # Solo-drive storage accounting: created on the first feed() so a
        # shared scan (which consumes frames directly) attributes block
        # I/O to the batch metrics instead, mirroring values_gathered.
        self._storage_tracker = None

    # -- driver interface ----------------------------------------------

    @property
    def window_blocks(self) -> int:
        """Lookahead window size the run expects to be fed in."""
        return self.strategy.window_blocks

    @property
    def finished(self) -> bool:
        """True once the run needs no further windows."""
        return self.satisfied or self._scan_ended

    def scan_context(self) -> ScanContext:
        """The run's current block-selection context (pure state read).

        Exposed separately from :meth:`select_blocks` so the parallel
        driver can compute *uncharged* lookahead masks (selection for
        window k+1 overlapping ingest of window k) and charge them via
        :meth:`charge_blocks` only when the mask is actually consumed.
        """
        if self.pool is not None:
            if self.uses_active:
                active_rows = np.flatnonzero(self.pool.active & ~self.pool.dropped)
                active_groups = [self.pool.key_codes[i] for i in active_rows]
            else:
                active_groups = []
        else:
            active_groups = [
                view.key_codes
                for view in self.views.values()
                if view.active and not view.dropped
            ]
        return ScanContext(
            indexes=self.indexes,
            predicate_requirements=self.predicate_requirements,
            group_columns=self.group_by,
            active_groups=active_groups,
        )

    def charge_blocks(self, window: np.ndarray, mask: np.ndarray) -> None:
        """Account a block-fetch mask to this run's metrics."""
        fetched = int(mask.sum())
        self.metrics.blocks_fetched += fetched
        self.metrics.blocks_skipped += int(window.size - fetched)

    def select_blocks(self, window: np.ndarray) -> np.ndarray:
        """Phase 1 of a window: this run's block-fetch mask.

        Computed from the run's own state (strategy, active groups,
        predicate requirements) without touching the scramble's data, so a
        shared-scan driver can collect every run's mask first and fetch
        the union once.
        """
        mask = self.strategy.select_blocks(window, self.scan_context())
        self.charge_blocks(window, mask)
        return mask

    def consume(self, frame: WindowFrame, mask: np.ndarray, at_end: bool) -> None:
        """Phase 2 of a window: ingest this run's slice of a shared frame.

        ``mask`` is this run's :meth:`select_blocks` result (a subset of
        the frame's union mask).  Value arrays, combined group codes, and
        predicate masks come from the frame's shared materializations —
        the run never touches the scramble here.  Every ``round_rows``
        rows or at scan end (``at_end=True``), one OptStop round runs.
        """
        ex = self.executor
        # Both engines partition through the same fused kernel; they
        # differ only in the merge half (pool arrays vs the per-view
        # dict) and in the partition domain (the pool's codes vs the
        # run's full group domain).
        delta = partition_ingest(
            frame.rows.size,
            frame.element_selector(mask),
            lambda: frame.predicate_mask(self.query.predicate),
            self.pool.codes if self.pool is not None else self.domain,
            self.frame_values_of(frame),
            self.frame_combined_of(frame),
        )
        if self.pool is not None:
            self.consume_delta(delta, frame.window_rows, at_end)
            return
        self.metrics.rows_read += delta.n_read
        ex._ingest_scalar_delta(
            self.query, self.views, self.domain, delta,
            frame.window_rows, self.freezes_groups, bounder=self.bounder,
        )
        self._finish_window(delta.n_read, at_end)

    def frame_values_of(self, frame: WindowFrame):
        """Lazy pick-slicer over the frame's shared value array, or
        ``None`` for COUNT queries (the serial lazy-gather condition —
        the frame materializes the column only if this is invoked)."""
        if self.values_of is None:
            return None
        return lambda pick: frame.values(self.value_key, self.values_of)[pick]

    def frame_combined_of(self, frame: WindowFrame):
        """Lazy pick-slicer over the frame's combined group codes, or
        ``None`` for single-view pools (which need no partitioning)."""
        if self.pool is not None and self.pool.size <= 1:
            return None
        group_by = self.group_by
        ex = self.executor
        return lambda pick: frame.combined_codes(
            group_by, lambda rows: ex._combined_codes(group_by, rows)
        )[pick]

    def consume_delta(
        self, delta: IngestDelta, window_rows: int, at_end: bool
    ) -> None:
        """Phase 2 of a window from a pre-partitioned :class:`IngestDelta`.

        The pool-engine merge half of :meth:`consume`: the delta carries
        this run's window slice already partitioned by view (built in
        place by :meth:`consume`, or shipped back from a parallel ingest
        worker that ran :func:`~repro.fastframe.kernels.partition_ingest`
        over shared-memory window buffers).  For delta-capable bounders
        the worker may also have pre-partitioned the bounder-state update
        (``IngestDelta.bounder_delta``); when it did not,
        :meth:`~repro.fastframe.viewpool.ViewPool.apply_ingest` runs the
        *identical* ``partition_delta`` → ``merge_delta`` pair in place,
        so serial and parallel execute the same float program.  Merging
        deltas in window order is bit-identical to serial ingest because
        the delta arrays are exactly what the serial path computes in
        place.
        """
        self.metrics.rows_read += delta.n_read
        self.pool.apply_ingest(
            self.bounder, delta, window_rows, self.freezes_groups
        )
        self._finish_window(delta.n_read, at_end)

    def _finish_window(self, n_read: int, at_end: bool) -> None:
        """Shared round cadence after a window's rows were ingested."""
        ex = self.executor
        self.rows_since_bound += n_read
        if at_end:
            self._scan_ended = True

        if self.rows_since_bound >= ex.round_rows or at_end:
            self.rows_since_bound = 0
            self.round_index += 1
            self.metrics.rounds = self.round_index
            if self.pool is not None:
                if not self.fixed_sample_mode:
                    self.metrics.bounds_recomputed += ex._recompute_bounds_pool(
                        self.query, self.pool, self.bounds,
                        self.view_budget, self.round_index,
                        defer=self._cadence_defer_mask(at_end),
                        bounder=self.bounder,
                    )
                columns = ex._snapshot_columns(self.pool, self.bounds)
                ex._refresh_active_pool(self.query, self.pool, columns)
                self.satisfied = self.query.stopping.satisfied_columns(columns)
            else:
                if not self.fixed_sample_mode:
                    self.metrics.bounds_recomputed += ex._recompute_bounds(
                        self.query, self.views, self.bounds,
                        self.view_budget, self.round_index,
                        bounder=self.bounder,
                    )
                snapshots = ex._snapshots(
                    self.views, self.bounds, self.query, self.bounder
                )
                ex._refresh_active(self.query, self.views, snapshots)
                self.satisfied = self.query.stopping.satisfied(snapshots)

    def _cadence_defer_mask(self, at_end: bool) -> np.ndarray | None:
        """Pool rows whose bound recompute this round may skip (or ``None``).

        The adaptive round cadence (``round_cadence=k``): on rounds that
        are not a multiple of ``k`` — and not the scan's last — views the
        stopping condition certifies as *far* from its target keep their
        last certified interval and stay dirty, so the next full round
        picks them up.  Distance is judged on the current certified
        snapshot (:meth:`~repro.stopping.conditions.StoppingCondition.
        far_mask`); conditions without a distance notion return ``None``
        and every view recomputes as usual.  Deferral is sound: the old
        interval is still a valid 1−δ bound and a deferred view consumes
        none of the round's δ budget, so stopping can only fire later.
        """
        ex = self.executor
        if ex.round_cadence <= 1 or at_end:
            return None
        if self.round_index % ex.round_cadence == 0:
            return None  # full round: every dirty view recomputes
        columns = ex._snapshot_columns(self.pool, self.bounds)
        far = self.query.stopping.far_mask(columns)
        if far is None:
            return None
        defer = np.zeros(self.pool.size, dtype=bool)
        defer[columns.rows] = far
        return defer

    def feed(self, window: np.ndarray, at_end: bool) -> np.ndarray:
        """Process one lookahead window solo (select + materialize + consume).

        The single-query driver: builds a :class:`WindowFrame` over the
        run's own block mask and consumes it — the same code path the
        shared-scan driver takes, with a one-run union.  Returns the
        boolean fetch mask over ``window``.
        """
        if self._storage_tracker is None:
            from repro.fastframe.storage import storage_tracker

            self._storage_tracker = storage_tracker(self.executor.scramble)
        mask = self.select_blocks(window)
        frame = WindowFrame(self.executor.scramble, window, mask)
        self.consume(frame, mask, at_end)
        self.metrics.values_gathered += frame.values_gathered
        self._storage_tracker.drain(self.metrics)
        return mask

    def group_snapshots(self) -> dict:
        """Decoded per-group snapshots of the run's current intervals.

        The progressive view a live dashboard renders between rounds
        (:meth:`repro.api.QueryHandle.rounds`); keys are decoded group-by
        values, values are :class:`~repro.stopping.conditions.GroupSnapshot`.
        """
        ex = self.executor
        if self.pool is not None:
            columns = ex._snapshot_columns(self.pool, self.bounds)
            return {
                ex._decode_key(self.pool.key_codes[row], self.group_by): GroupSnapshot(
                    interval=Interval(float(columns.lo[i]), float(columns.hi[i])),
                    estimate=float(columns.estimate[i]),
                    samples=int(columns.samples[i]),
                    exhausted=bool(columns.exhausted[i]),
                )
                for i, row in enumerate(columns.rows)
            }
        snapshots = ex._snapshots(self.views, self.bounds, self.query, self.bounder)
        return {
            ex._decode_key(self.views[code].key_codes, self.group_by): snap
            for code, snap in snapshots.items()
        }

    def finalize(self, merge_index_counters: bool = True) -> QueryResult:
        """Seal the run and materialize its :class:`QueryResult`.

        ``merge_index_counters=False`` leaves the (scramble-shared) bitmap
        probe counters untouched so a shared-scan driver can attribute them
        to the whole gather instead of whichever run finalizes first.
        """
        if self._finalized is not None:
            return self._finalized
        ex = self.executor
        if self.fixed_sample_mode:
            # The one interval this run issues, at the undecayed per-view
            # budget; computed for every surviving view regardless of its
            # (sample-count-based) active flag.
            if self.pool is not None:
                self.metrics.bounds_recomputed += ex._recompute_bounds_pool(
                    self.query, self.pool, self.bounds,
                    self.view_budget, round_index=None,
                    bounder=self.bounder,
                )
            else:
                self.metrics.bounds_recomputed += ex._recompute_bounds(
                    self.query, self.views, self.bounds,
                    self.view_budget, round_index=None,
                    bounder=self.bounder,
                )
        self.metrics.stopped_early = self.satisfied and not self._scan_ended
        if self.pool is not None:
            ex._finalize_exhausted_pool(self.query, self.pool, bounder=self.bounder)
            groups = ex._pool_results(
                self.query, self.pool, self.group_by, bounder=self.bounder
            )
        else:
            ex._finalize_exhausted(self.query, self.views, bounder=self.bounder)
            groups = {
                ex._decode_key(view.key_codes, self.group_by): ex._group_result(
                    self.query, view, self.group_by, bounder=self.bounder
                )
                for view in self.views.values()
                if not view.dropped
            }
        if merge_index_counters:
            self.metrics.merge_index_counters(self.indexes.values())
        self.metrics.wall_time_s = time.perf_counter() - self._start_time
        self._finalized = QueryResult(
            query=self.query, groups=groups, metrics=self.metrics
        )
        return self._finalized


def validate_shared_runs(runs: list[QueryRun], cursor: ScanCursor) -> None:
    """Check a run batch is drivable from one cursor (shared preflight)."""
    if not runs:
        raise ValueError("run_shared_scan requires at least one QueryRun")
    scramble = cursor.scramble
    for run in runs:
        if run.executor.scramble is not scramble:
            raise ValueError(
                "all runs in a shared scan must target the cursor's scramble"
            )
        if run.window_blocks != cursor.window_blocks:
            raise ValueError(
                "all runs in a shared scan must use the cursor's window size "
                f"({run.window_blocks} != {cursor.window_blocks})"
            )


def run_shared_scan(
    runs: list[QueryRun],
    cursor: ScanCursor,
    parallelism: int | None = None,
    task_timeout: float | None = None,
    task_batch: int | None = None,
) -> ExecutionMetrics:
    """Drive many query runs from one scan cursor (the gather hot loop).

    Each pass takes the next lookahead window off the shared cursor,
    collects every unfinished run's block mask, fetches the **union**
    once, and materializes one :class:`WindowFrame` over it — value
    arrays, combined group codes, and predicate masks are gathered once
    per window, however many queries consume them.  Each run then slices
    its private view out of the frame, so a block wanted by k queries is
    fetched once, a column aggregated by k queries is gathered once, and
    the returned metrics count that union — the physical cost of the
    whole batch (``values_gathered`` counts the frame's shared gathers;
    per-run metrics record no gathers of their own in this mode).  Runs
    retire independently as their stopping conditions fire; the scan
    stops as soon as every run is finished (or the scramble is
    exhausted).

    Per-run results are untouched by the sharing: call
    ``run.finalize(merge_index_counters=False)`` on each run afterwards to
    collect per-query results whose intervals match sequential execution
    from the same start block exactly.

    ``metrics.rounds`` counts shared passes (windows taken off the
    cursor); ``stopped_early`` is True when every run satisfied its
    stopping condition before the scramble ran out;
    ``bounds_recomputed`` sums the runs' incremental round work.

    ``parallelism`` above 1 (``None`` defers to ``REPRO_PARALLELISM``)
    routes the same loop through
    :class:`~repro.fastframe.parallel.ParallelScanDriver`: per-query
    window slices are partitioned in worker processes and folded back in
    deterministic order, so results and metrics (except wall time) are
    bit-identical to the serial loop below.  ``task_batch`` groups
    several per-query partitions into one worker task (``None`` defers
    to ``REPRO_TASK_BATCH``, then auto) — still bit-identical, the fold
    order never changes.
    """
    from repro.fastframe.parallel import ParallelScanDriver, resolve_parallelism

    validate_shared_runs(runs, cursor)
    workers = resolve_parallelism(parallelism)
    if workers > 1:
        return ParallelScanDriver(
            runs,
            cursor,
            parallelism=workers,
            task_timeout=task_timeout,
            task_batch=task_batch,
        ).run()
    from repro.fastframe.storage import storage_tracker

    scramble = cursor.scramble
    metrics = ExecutionMetrics()
    start_time = time.perf_counter()
    indexes: dict[str, BlockBitmapIndex] = {}
    for run in runs:
        indexes.update(run.indexes)
    # Block I/O is a union-level cost like values_gathered: the batch
    # metrics carry it, per-run metrics record none in shared mode.
    tracker = storage_tracker(scramble)

    for window, at_end in cursor.windows():
        live = [run for run in runs if not run.finished]
        masks = [run.select_blocks(window) for run in live]
        union = np.zeros(window.shape, dtype=bool)
        for mask in masks:
            union |= mask
        frame = WindowFrame(scramble, window, union)
        for run, mask in zip(live, masks):
            run.consume(frame, mask, at_end)
            if run.finished:
                # Seal the run the moment it retires so its wall time
                # spans construction → retirement, not the whole batch
                # (finalize is cached; later calls return this result).
                run.finalize(merge_index_counters=False)
        fetched = int(union.sum())
        metrics.blocks_fetched += fetched
        metrics.blocks_skipped += int(window.size - fetched)
        metrics.rows_read += frame.rows.size
        metrics.values_gathered += frame.values_gathered
        metrics.rounds += 1
        tracker.drain(metrics)
        if all(run.finished for run in runs):
            break

    metrics.stopped_early = all(run.satisfied for run in runs)
    metrics.bounds_recomputed = sum(
        run.metrics.bounds_recomputed for run in runs
    )
    metrics.merge_index_counters(indexes.values())
    metrics.wall_time_s = time.perf_counter() - start_time
    return metrics
