"""Scrambles: pre-shuffled table copies enabling scan-based sampling (Def. 4).

"A scramble is an ordered copy of a relational table that has been permuted
randomly, allowing for scan-based without-replacement sampling" (§4.1).
Scanning any subset of a scramble chosen without knowledge of the data
order — in particular, any filtered/grouped subset, i.e. any *aggregate
view* (Definition 5) — is equivalent to sampling without replacement.

The scramble is organized into fixed-size **blocks** (25 rows in the
paper's experiments, §4.3), the unit of I/O and of bitmap indexing.  The
up-front shuffling cost is paid once and amortized over many ad-hoc
queries.
"""

from __future__ import annotations

import numpy as np

from repro.fastframe.table import Table

__all__ = ["Scramble", "DEFAULT_BLOCK_SIZE"]

#: Block size used in the paper's experiments (§4.3): 25 rows per block.
DEFAULT_BLOCK_SIZE = 25


class Scramble:
    """A randomly permuted copy of a table with a block layout.

    Parameters
    ----------
    table:
        The base table; a permuted copy is materialized (the base table is
        left untouched, mirroring the paper's offline shuffle).
    block_size:
        Rows per block (the I/O granularity).
    rng:
        Randomness for the permutation; pass a seeded generator for
        reproducible layouts.
    """

    def __init__(
        self,
        table: Table,
        block_size: int = DEFAULT_BLOCK_SIZE,
        rng: np.random.Generator | None = None,
    ) -> None:
        if table.num_rows == 0:
            raise ValueError("cannot scramble an empty table")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        rng = rng or np.random.default_rng()
        self.permutation = rng.permutation(table.num_rows)
        self.table = table.take(self.permutation)
        self.block_size = block_size
        #: Load-time metadata shared by every executor over this scramble
        #: (bitmap indexes, group domains); see ApproximateExecutor.
        self.metadata_cache: dict = {}
        #: Attached out-of-core block store (None ⇒ in-memory arrays);
        #: see repro.fastframe.storage.
        self.storage = None
        #: True when the table's column arrays themselves read through
        #: the store (a scramble opened from a block directory): the
        #: scramble is then read-only.
        self._storage_owns_table = False

    @classmethod
    def from_storage(cls, store, table: Table) -> "Scramble":
        """A scramble over rows that were permuted when spilled to a store.

        Used by :func:`repro.fastframe.storage.open_block_scramble`: the
        block directory holds an already-permuted table, so no reshuffle
        happens (re-permuting would fault every column in and break the
        on-disk block ↔ row correspondence).
        """
        self = cls.__new__(cls)
        self.permutation = None  # the shuffle happened before the spill
        self.table = table
        self.block_size = store.scramble_block_size
        self.metadata_cache = {}
        self.storage = store
        self._storage_owns_table = True
        return self

    def attach_storage(self, store) -> None:
        """Route hot-path gathers through an mmap block store.

        The in-memory arrays are kept (metadata built from them stays
        valid — the store holds identical bytes), but value and code
        gathers go out-of-core from here on.
        """
        if store.num_rows != self.num_rows:
            raise ValueError(
                f"store holds {store.num_rows} rows but scramble has {self.num_rows}"
            )
        self.storage = store

    def detach_storage(self) -> None:
        """Fall back to the in-memory arrays (no-op when not attached)."""
        if self._storage_owns_table:
            raise RuntimeError(
                "this scramble was opened from a block directory and has no "
                "in-memory arrays to fall back to"
            )
        self.storage = None

    @property
    def store(self):
        """The ColumnStore serving this scramble's gathers.

        The attached block store when one is present, else an
        :class:`~repro.fastframe.storage.InMemoryStore` view of the
        resident arrays — the default backend, with zero behavior change.
        """
        if self.storage is not None:
            return self.storage
        from repro.fastframe.storage import InMemoryStore

        return InMemoryStore(self.table)

    def column_values(self, name: str):
        """A continuous column for gather (store-backed when attached)."""
        if self.storage is not None:
            return self.storage.continuous(name)
        return self.table.continuous(name)

    def column_codes(self, name: str):
        """A categorical column's codes for gather (store-backed when attached)."""
        if self.storage is not None:
            return self.storage.codes(name)
        return self.table.categorical(name).codes

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def num_blocks(self) -> int:
        return -(-self.num_rows // self.block_size)  # ceil division

    def block_rows(self, block_id: int) -> slice:
        """Row slice of a block (the last block may be short)."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range [0, {self.num_blocks})")
        start = block_id * self.block_size
        return slice(start, min(start + self.block_size, self.num_rows))

    def block_length(self, block_id: int) -> int:
        """Number of rows in a block."""
        rows = self.block_rows(block_id)
        return rows.stop - rows.start

    def count_rows_of_blocks(self, block_ids: np.ndarray) -> int:
        """Total rows spanned by a set of blocks (pure arithmetic).

        Equivalent to ``rows_of_blocks(block_ids).size`` without
        materializing the row-index array — used by accounting paths that
        only need the count (the last block may be short).
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return 0
        starts = block_ids * self.block_size
        return int(
            (np.minimum(starts + self.block_size, self.num_rows) - starts).sum()
        )

    def rows_of_blocks(self, block_ids: np.ndarray) -> np.ndarray:
        """Row indices of a set of blocks, in block order.

        Vectorized equivalent of concatenating :meth:`block_rows` slices;
        the executor uses this to gather one whole round of blocks at once.
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = block_ids * self.block_size
        offsets = np.arange(self.block_size, dtype=np.int64)
        rows = (starts[:, None] + offsets[None, :]).ravel()
        return rows[rows < self.num_rows]

    def insert_rows(
        self,
        continuous: dict[str, np.ndarray] | None = None,
        categorical: dict[str, object] | None = None,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Insert rows while keeping the layout a uniform random permutation.

        The scramble's soundness rests on the permutation being uniform;
        appending at the end would bias late scan positions toward new
        data.  Each inserted row is therefore placed by one step of the
        inside-out Fisher-Yates construction: append, then swap with a
        uniformly random position (possibly itself).  If the prior layout
        was a uniform permutation, the new layout is a uniform permutation
        of the enlarged table.

        Load-time metadata (bitmap indexes, group domains) is invalidated —
        it is rebuilt lazily on the next query.  Returns the number of rows
        inserted.
        """
        if self._storage_owns_table:
            raise RuntimeError(
                "cannot insert into a scramble opened from a block directory; "
                "rewrite the store with repro.fastframe.storage.write_block_store"
            )
        if self.storage is not None:
            # The spilled bytes would go stale; fall back to memory (a
            # later connect() under REPRO_STORAGE=mmap re-spills).
            self.detach_storage()
        rng = rng or np.random.default_rng()
        added = self.table.append_rows(continuous, categorical)
        for offset in range(added):
            end = self.num_rows - added + offset
            target = int(rng.integers(end + 1))
            self.table.swap_rows(target, end)
        self.permutation = None  # original-row lineage is no longer tracked
        self.metadata_cache.clear()
        return added

    def block_order_from(self, start_block: int) -> np.ndarray:
        """All block ids in scan order starting at ``start_block``, wrapping.

        Approximate queries start from a random position in the shuffled
        data (§5.2); wrapping the scan covers every block exactly once.
        """
        if not 0 <= start_block < self.num_blocks:
            raise IndexError(f"start block {start_block} out of range [0, {self.num_blocks})")
        ids = np.arange(self.num_blocks, dtype=np.int64)
        return np.concatenate([ids[start_block:], ids[:start_block]])
