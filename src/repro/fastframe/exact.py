"""The Exact baseline: full-scan query evaluation (§5.2).

"This strawman approach eschews approximation and runs queries exactly, to
serve as a simple baseline."  The Exact executor always uses a plain scan —
"only approximate approaches can prune groups" — reading every block of the
scramble once, and returns degenerate (zero-width) intervals so that exact
and approximate results are interchangeable downstream.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bounders.base import Interval
from repro.fastframe.query import (
    AggregateFunction,
    ExecutionMetrics,
    GroupResult,
    Query,
    QueryResult,
)
from repro.fastframe.scramble import Scramble

__all__ = ["ExactExecutor"]


class ExactExecutor:
    """Evaluates queries exactly with a full sequential scan."""

    def __init__(self, scramble: Scramble) -> None:
        self.scramble = scramble

    #: Blocks per processing window (same engine granularity as the
    #: approximate executor's lookahead windows).
    window_blocks: int = 1024

    def execute(self, query: Query) -> QueryResult:
        """Scan every block once, block-window at a time, and aggregate.

        The scan is windowed through the same block interface as the
        approximate executor so wall-time comparisons reflect the paper's
        setup — both engines pay the same per-block access path, and the
        approximate engine's extra cost is genuinely the error-bounding
        machinery (whose overhead the paper also observes, §5.4.1).
        """
        start_time = time.perf_counter()
        table = self.scramble.table

        if query.group_by:
            cards = [
                table.categorical(column).cardinality for column in query.group_by
            ]
            domain_size = int(np.prod(cards))
        else:
            domain_size = 1

        counts = np.zeros(domain_size, dtype=np.int64)
        sums = np.zeros(domain_size, dtype=np.float64)
        # MEDIAN/PERCENTILE need the full per-group multiset, not a
        # running sum; collect (code, value) pairs and select the order
        # statistic per group after the scan.
        quantile_codes: list[np.ndarray] = []
        quantile_values: list[np.ndarray] = []
        num_blocks = self.scramble.num_blocks
        for window_start in range(0, num_blocks, self.window_blocks):
            window = np.arange(
                window_start, min(window_start + self.window_blocks, num_blocks)
            )
            rows = self.scramble.rows_of_blocks(window)
            mask = query.predicate.mask(table, rows)
            rows = rows[mask]
            if rows.size == 0:
                continue
            if query.group_by:
                combined = None
                for column in query.group_by:
                    categorical = table.categorical(column)
                    codes = categorical.codes[rows].astype(np.int64)
                    combined = (
                        codes
                        if combined is None
                        else combined * categorical.cardinality + codes
                    )
            else:
                combined = np.zeros(rows.size, dtype=np.int64)
            counts += np.bincount(combined, minlength=domain_size)
            if query.aggregate is not AggregateFunction.COUNT:
                if isinstance(query.column, str):
                    values = table.continuous(query.column)[rows]
                else:
                    values = query.column.evaluate(table, rows)
                if query.aggregate.is_quantile:
                    quantile_codes.append(combined)
                    quantile_values.append(np.asarray(values, dtype=np.float64))
                else:
                    sums += np.bincount(
                        combined, weights=values, minlength=domain_size
                    )

        quantiles = None
        if query.aggregate.is_quantile:
            quantiles = self._group_quantiles(
                query, quantile_codes, quantile_values, counts
            )

        groups: dict = {}
        present = np.flatnonzero(counts)
        for code in present:
            count = int(counts[code])
            if query.aggregate is AggregateFunction.COUNT:
                value = float(count)
            elif query.aggregate is AggregateFunction.AVG:
                value = float(sums[code]) / count
            elif query.aggregate.is_quantile:
                value = float(quantiles[code])
            else:
                value = float(sums[code])
            key = self._decode(int(code), query.group_by)
            groups[key] = GroupResult(
                key=key,
                estimate=value,
                interval=Interval(value, value),
                count_interval=Interval(float(count), float(count)),
                samples=count,
                exhausted=True,
            )

        metrics = ExecutionMetrics(
            rows_read=self.scramble.num_rows,
            blocks_fetched=self.scramble.num_blocks,
            rounds=1,
            stopped_early=False,
            wall_time_s=time.perf_counter() - start_time,
        )
        return QueryResult(query=query, groups=groups, metrics=metrics)

    @staticmethod
    def _group_quantiles(
        query: Query,
        code_chunks: list[np.ndarray],
        value_chunks: list[np.ndarray],
        counts: np.ndarray,
    ) -> np.ndarray:
        """Exact per-group ``x_(⌈p·n⌉)`` via one sort of the collected pairs."""
        from repro.cdfbounds.quantile import empirical_quantile

        out = np.zeros(counts.size, dtype=np.float64)
        if not code_chunks:
            return out
        codes = np.concatenate(code_chunks)
        values = np.concatenate(value_chunks)
        order = np.argsort(codes, kind="stable")
        codes, values = codes[order], values[order]
        boundaries = np.concatenate(
            ([0], np.flatnonzero(np.diff(codes)) + 1, [codes.size])
        )
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            out[codes[start]] = empirical_quantile(
                values[start:end], query.quantile_p
            )
        return out

    def _decode(self, combined: int, group_by: tuple[str, ...]) -> tuple:
        if not group_by:
            return ()
        cards = [
            self.scramble.table.categorical(column).cardinality for column in group_by
        ]
        codes = []
        for card in reversed(cards):
            codes.append(combined % card)
            combined //= card
        values = tuple(
            self.scramble.table.categorical(column).dictionary[code]
            for column, code in zip(group_by, reversed(codes))
        )
        return values
