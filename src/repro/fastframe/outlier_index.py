"""Outlier indexing [18]: the offline analogue of RangeTrim (§6).

Chaudhuri et al.'s outlier index "works by computing approximate aggregates
derived by combining an estimate from the main table and an exact aggregate
from the so-called 'outlier index', which stores all the rows with outlier
values.  The benefit of the outlier index is that it shrinks the range of
the data from which samples are taken, allowing for faster convergence of
approximate answers" (§6).  The paper positions it as an *offline* analogue
of RangeTrim — and notes the two are orthogonal for simple aggregates and
"could be leveraged together".

This module implements that baseline so the reproduction can measure the
comparison (``benchmarks/bench_outlier_index.py``):

* :class:`OutlierIndexedStore` splits a table offline into a small exact
  *outlier table* (the tail rows of the aggregated column) and a scrambled
  *inlier store* whose catalog range for that column is the tightened
  inlier range ``[a', b']``.
* :meth:`OutlierIndexedStore.execute_avg` answers a scalar AVG query by
  scanning the outlier table exactly (it is tiny), running the normal
  approximate executor over the inlier scramble, and composing the two
  into one certified interval.

Also per §6, the composition below is only valid for aggregates over the
*indexed column itself*: an arbitrary derived expression "can drastically
change the set of outlying values", which is the limitation RangeTrim does
not have.

Interval composition
--------------------
With exact outlier totals ``(n_out, s_out)`` and certified inlier intervals
``G = [g_l, g_r] ∋ AVG(V_in)`` and ``C = [c_l, c_r] ∋ |V_in|`` (both hold
simultaneously with probability ≥ 1 − δ; the executor budgets them jointly),

    AVG(V) = (s_out + AVG(V_in)·|V_in|) / (n_out + |V_in|)

is monotone in ``AVG(V_in)`` for fixed ``|V_in|``, and monotone in
``|V_in|`` for fixed ``AVG(V_in)`` (the sign of its partial derivative,
``g·n_out − s_out``, does not depend on ``|V_in|``), so its range over
``G × C`` is attained at the four corners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounders.base import ErrorBounder, Interval
from repro.fastframe.catalog import RangeBounds
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import AggregateFunction, ExecutionMetrics, Query
from repro.fastframe.scan import SamplingStrategy
from repro.fastframe.scramble import DEFAULT_BLOCK_SIZE, Scramble
from repro.fastframe.table import Table
from repro.stats.delta import DEFAULT_DELTA
from repro.stopping.conditions import StoppingCondition

__all__ = ["OutlierIndexedStore", "OutlierAvgResult", "compose_outlier_avg"]


def compose_outlier_avg(
    n_out: int, s_out: float, inlier_avg: Interval, inlier_count: Interval
) -> Interval:
    """Certified AVG interval from exact outlier totals + inlier CIs.

    See the module docstring for the monotonicity argument; the interval is
    the hull of the composed ratio over the four ``(avg, count)`` corners.
    Degenerates to the exact outlier average when the inlier view is
    certified empty.
    """
    corners = []
    for g in (inlier_avg.lo, inlier_avg.hi):
        for n in (inlier_count.lo, inlier_count.hi):
            total = n_out + n
            if total <= 0.0:
                continue
            corners.append((s_out + g * n) / total)
    if not corners:
        if n_out == 0:
            raise ValueError("cannot compose an AVG over a certified-empty view")
        corners = [s_out / n_out]
    return Interval(min(corners), max(corners))


@dataclass
class OutlierAvgResult:
    """Result of an outlier-indexed AVG query.

    Attributes
    ----------
    estimate:
        Composed point estimate of the view AVG.
    interval:
        Certified (1 − δ) interval for the view AVG.
    outlier_rows:
        Rows of the outlier table matching the predicate (read exactly).
    metrics:
        Metrics of the inlier approximate execution (the outlier scan is a
        fixed, tiny cost paid on every query).
    """

    estimate: float
    interval: Interval
    outlier_rows: int
    metrics: ExecutionMetrics


class OutlierIndexedStore:
    """Offline outlier/inlier split of a table for one aggregated column.

    Parameters
    ----------
    table:
        The base table (left untouched).
    column:
        Continuous column whose tails are indexed; AVG queries over this
        column are the ones the index accelerates.
    outlier_fraction:
        Fraction of rows stored exactly in the outlier index, split evenly
        between the low and high tails ([18] sizes the index to fit memory;
        a fraction of the data is the common policy).
    block_size, rng:
        Scramble layout parameters for the inlier store.
    """

    def __init__(
        self,
        table: Table,
        column: str,
        outlier_fraction: float = 0.001,
        block_size: int = DEFAULT_BLOCK_SIZE,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 < outlier_fraction < 1.0:
            raise ValueError(
                f"outlier_fraction must be in (0, 1), got {outlier_fraction}"
            )
        values = table.continuous(column)
        num_rows = values.size
        per_tail = max(int(round(num_rows * outlier_fraction / 2.0)), 1)
        if 2 * per_tail >= num_rows:
            raise ValueError(
                f"outlier_fraction {outlier_fraction} leaves no inlier rows "
                f"for a table of {num_rows} rows"
            )
        order = np.argsort(values, kind="stable")
        outlier_ids = np.concatenate([order[:per_tail], order[-per_tail:]])
        inlier_ids = order[per_tail:-per_tail]

        self.column = column
        self.outlier_table = table.take(outlier_ids)
        inlier_table = table.take(inlier_ids)
        # The index's entire benefit: the inlier store's catalog range is
        # the *tightened* inlier min/max, not the full-table bounds.
        inlier_values = inlier_table.continuous(column)
        inlier_table.catalog.register_continuous(
            column,
            inlier_values,
            bounds=RangeBounds(float(inlier_values.min()), float(inlier_values.max())),
        )
        self.inlier_scramble = Scramble(inlier_table, block_size=block_size, rng=rng)

    @property
    def outlier_rows(self) -> int:
        """Rows stored exactly in the outlier index."""
        return self.outlier_table.num_rows

    def inlier_bounds(self) -> RangeBounds:
        """The tightened range ``[a', b']`` the inlier samples enjoy."""
        return self.inlier_scramble.table.catalog.bounds(self.column)

    def execute_avg(
        self,
        stopping: StoppingCondition,
        bounder: ErrorBounder,
        predicate=None,
        delta: float = DEFAULT_DELTA,
        strategy: SamplingStrategy | None = None,
        round_rows: int | None = None,
        rng: np.random.Generator | None = None,
        start_block: int | None = None,
    ) -> OutlierAvgResult:
        """Scalar AVG over the indexed column with a certified interval.

        The predicate is applied exactly to the outlier table and
        approximately (via the executor) to the inlier scramble; the
        stopping condition drives the inlier scan.
        """
        query_kwargs = {} if predicate is None else {"predicate": predicate}
        query = Query(
            AggregateFunction.AVG,
            self.column,
            stopping,
            name="outlier-indexed AVG",
            **query_kwargs,
        )

        mask = query.predicate.mask(self.outlier_table)
        outlier_values = self.outlier_table.continuous(self.column)[mask]
        n_out = int(mask.sum())
        s_out = float(outlier_values.sum())

        executor_kwargs = {} if round_rows is None else {"round_rows": round_rows}
        executor = ApproximateExecutor(
            self.inlier_scramble,
            bounder,
            strategy=strategy,
            delta=delta,
            rng=rng,
            **executor_kwargs,
        )
        inlier = executor.execute(query, start_block=start_block)
        if inlier.groups:
            group = inlier.scalar()
            inlier_avg, inlier_count = group.interval, group.count_interval
            inlier_estimate = group.estimate
        else:
            # The inlier view was certified empty; only outliers match.
            inlier_avg, inlier_count = Interval(0.0, 0.0), Interval(0.0, 0.0)
            inlier_estimate = 0.0
        interval = compose_outlier_avg(n_out, s_out, inlier_avg, inlier_count)
        count_mid = max(inlier_count.midpoint, 0.0)
        denom = n_out + count_mid
        estimate = (
            (s_out + inlier_estimate * count_mid) / denom
            if denom > 0
            else float("nan")
        )
        return OutlierAvgResult(
            estimate=estimate,
            interval=interval,
            outlier_rows=n_out,
            metrics=inlier.metrics,
        )
