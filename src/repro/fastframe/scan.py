"""Sampling strategies: Scan, ActiveSync, ActivePeek (§4.3, §5.2).

All strategies consume the scramble in scan order (wrapping from a random
start) in lookahead *windows* of 1024 blocks and decide which blocks of
each window to fetch:

* **Scan** — fetches every block, except those a fixed categorical
  predicate certifies empty (the paper permits Scan to "leverage bitmaps
  for evaluation of whether a block contains tuples that satisfy a fixed
  predicate, such as the one appearing in F-q1").  It never consults
  active groups, so with sparse bottleneck groups it degenerates toward
  Exact.
* **ActiveSync** — additionally skips blocks containing no tuples of any
  *active* group, probing the bitmap index synchronously per block.  Each
  per-block probe is charged; in the paper these probes "typically result
  in cache misses", and in this reproduction they are Python-level loop
  iterations — both models make the probe the unit of overhead.
* **ActivePeek** — same skipping decision, but computed with vectorized
  batch probes over the whole lookahead window, modelling the asynchronous
  lookahead thread of [50] whose batched bitmap iteration keeps bitmaps in
  cache (§4.3).

Skipping is always *conservative*: a block is skipped only when the index
certifies it holds no row of any active group (and/or no row satisfying
the predicate), so no needed tuple is ever missed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.fastframe.bitmap import LOOKAHEAD_BATCH_BLOCKS, BlockBitmapIndex

__all__ = [
    "ScanContext",
    "ScanCursor",
    "SamplingStrategy",
    "ScanStrategy",
    "ActiveSyncStrategy",
    "ActivePeekStrategy",
    "get_strategy",
    "EVALUATED_STRATEGIES",
]


class ScanCursor:
    """A sequential wrapped-scan position over a scramble's blocks.

    Yields the scramble's blocks in scan order from ``start_block``
    (wrapping, each block exactly once) in lookahead windows of
    ``window_blocks``.  The cursor is the unit of sharing for multi-query
    execution: one cursor can feed several concurrent
    :class:`~repro.fastframe.executor.QueryRun` states, so a whole
    dashboard session costs a single pass over the scramble.
    """

    def __init__(
        self,
        scramble,
        start_block: int,
        window_blocks: int = LOOKAHEAD_BATCH_BLOCKS,
    ) -> None:
        if window_blocks < 1:
            raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
        self.scramble = scramble
        self.start_block = int(start_block)
        self.window_blocks = window_blocks
        self.order = scramble.block_order_from(self.start_block)
        self.position = 0

    @property
    def exhausted(self) -> bool:
        """True once every block has been handed out."""
        return self.position >= self.order.size

    def next_window(self) -> np.ndarray:
        """The next lookahead window of block ids (empty when exhausted).

        When the scramble reads from an out-of-core block store, consuming
        window k schedules async page warming for window k+1's blocks (the
        other half of the peek/next pipelining split): the background
        reader's I/O overlaps this window's ingest, and by the time the
        scan demands k+1's blocks their pages are resident.
        """
        window = self.order[self.position : self.position + self.window_blocks]
        self.position += window.size
        store = getattr(self.scramble, "storage", None)
        if store is not None and window.size:
            upcoming = self.peek_window()
            if upcoming.size:
                store.prefetch_scramble_blocks(upcoming, self.scramble.block_size)
        return window

    def peek_window(self) -> np.ndarray:
        """The next window *without* consuming it (empty when exhausted).

        The prefetch half of the lookahead split: a pipelined driver peeks
        window k+1 to run block selection for it while window k's ingest
        is still in flight, then consumes it with :meth:`next_window`.
        Peeking never advances :attr:`position`, so accounting stays with
        the consumer.
        """
        return self.order[self.position : self.position + self.window_blocks]

    def peek_at_end(self) -> bool:
        """Whether the *peeked* window would be the scan's last."""
        return self.position + self.window_blocks >= self.order.size

    def windows(self):
        """Iterate ``(window, at_end)`` pairs until the scan is exhausted.

        ``at_end`` is True for the last window of the scan — the shared
        iteration idiom of every driver (solo execution, progressive
        rounds, and the shared-scan gather loop); drivers stop consuming
        early when their runs finish.
        """
        while not self.exhausted:
            window = self.next_window()
            yield window, self.exhausted


@dataclass
class ScanContext:
    """Everything a strategy may consult when selecting blocks.

    Attributes
    ----------
    indexes:
        Bitmap index per indexed categorical column.
    predicate_requirements:
        Per-column sets of dictionary codes a matching row must carry
        (from :meth:`Predicate.categorical_requirements`); empty disables
        predicate-based skipping.
    group_columns:
        The GROUP BY columns (empty for scalar queries).
    active_groups:
        Dictionary codes (one tuple per group, aligned with
        ``group_columns``) of the currently active groups.
    """

    indexes: dict[str, BlockBitmapIndex]
    predicate_requirements: dict[str, set[int]]
    group_columns: tuple[str, ...]
    active_groups: list[tuple[int, ...]]


class SamplingStrategy(ABC):
    """Chooses which blocks of a lookahead window to fetch."""

    name: str = "strategy"
    window_blocks: int = LOOKAHEAD_BATCH_BLOCKS

    #: Whether the strategy skips blocks based on *active groups* (if not,
    #: every group is effectively always covered by the scan — used by the
    #: executor's covered-row accounting).
    uses_active_groups: bool = False

    @abstractmethod
    def select_blocks(self, window: np.ndarray, context: ScanContext) -> np.ndarray:
        """Boolean mask over ``window``: True = fetch the block."""

    def _predicate_mask(
        self, window: np.ndarray, context: ScanContext, batched: bool
    ) -> np.ndarray:
        """Blocks that may contain predicate-satisfying rows.

        A block can be skipped when, for some constrained column, *none*
        of the required codes appear in it.
        """
        mask = np.ones(window.shape, dtype=bool)
        for column, codes in context.predicate_requirements.items():
            if column not in context.indexes:
                continue
            index = context.indexes[column]
            if batched:
                # One multi-code batch probe for the whole window instead
                # of a probe per required code.
                column_mask = index.probe_batch_any(window, sorted(codes))
            else:
                column_mask = np.zeros(window.shape, dtype=bool)
                for code in sorted(codes):
                    for position, block in enumerate(window):
                        if not column_mask[position]:
                            column_mask[position] = index.probe(int(block), code)
            mask &= column_mask
            if not mask.any():
                break
        return mask


class ScanStrategy(SamplingStrategy):
    """Sequential scan; skips only predicate-certified-empty blocks."""

    name = "Scan"
    uses_active_groups = False

    def select_blocks(self, window: np.ndarray, context: ScanContext) -> np.ndarray:
        return self._predicate_mask(window, context, batched=True)


class ActiveSyncStrategy(SamplingStrategy):
    """Active scanning with synchronous per-block index probes.

    For each block, active groups are probed one at a time (most-frequent
    group first, early-exiting on the first hit — the favourable order for
    a system that knows per-value block counts); the block is skipped when
    every active group is certified absent.
    """

    name = "ActiveSync"
    uses_active_groups = True

    def select_blocks(self, window: np.ndarray, context: ScanContext) -> np.ndarray:
        mask = self._predicate_mask(window, context, batched=False)
        if not context.group_columns:
            return mask
        if not context.active_groups:
            return np.zeros(window.shape, dtype=bool)
        ordered_groups = _order_by_frequency(context)
        indexes = [context.indexes[column] for column in context.group_columns]
        for position, block in enumerate(window):
            if not mask[position]:
                continue
            block = int(block)
            present = False
            for codes in ordered_groups:
                if all(
                    index.probe(block, code) for index, code in zip(indexes, codes)
                ):
                    present = True
                    break
            mask[position] = present
        return mask


class ActivePeekStrategy(SamplingStrategy):
    """Active scanning with batched lookahead probes (the paper's best).

    The whole window is probed per (group, column) with one vectorized
    batch operation; a block survives if some active group is possibly
    present in it.
    """

    name = "ActivePeek"
    uses_active_groups = True

    def select_blocks(self, window: np.ndarray, context: ScanContext) -> np.ndarray:
        mask = self._predicate_mask(window, context, batched=True)
        if not context.group_columns:
            return mask
        if not context.active_groups:
            return np.zeros(window.shape, dtype=bool)
        if len(context.group_columns) == 1:
            # Single GROUP BY column: "block holds some active group" is a
            # plain multi-code membership test — one merged batch probe for
            # the whole window, however many groups are active.
            index = context.indexes[context.group_columns[0]]
            any_active = index.probe_batch_any(
                window, [codes[0] for codes in context.active_groups]
            )
            return mask & any_active
        any_active = np.zeros(window.shape, dtype=bool)
        for codes in context.active_groups:
            remaining = mask & ~any_active
            if not remaining.any():
                break
            group_mask = remaining.copy()
            for column, code in zip(context.group_columns, codes):
                index = context.indexes[column]
                group_mask &= index.probe_batch(window, code)
                if not group_mask.any():
                    break
            any_active |= group_mask
        return mask & any_active


def _order_by_frequency(context: ScanContext) -> list[tuple[int, ...]]:
    """Active groups ordered by descending block frequency (probe order)."""
    first_index = context.indexes[context.group_columns[0]]

    def frequency(codes: tuple[int, ...]) -> int:
        return first_index.block_count_of(codes[0])

    return sorted(context.active_groups, key=frequency, reverse=True)


_STRATEGIES = {
    "scan": ScanStrategy,
    "activesync": ActiveSyncStrategy,
    "activepeek": ActivePeekStrategy,
}

#: Strategy names compared in Table 6.
EVALUATED_STRATEGIES = ("scan", "activesync", "activepeek")


def get_strategy(name: str) -> SamplingStrategy:
    """Construct a sampling strategy by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _STRATEGIES:
        raise KeyError(f"unknown strategy {name!r}; available: {sorted(_STRATEGIES)}")
    return _STRATEGIES[key]()
