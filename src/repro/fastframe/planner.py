"""Approximate-vs-exact query planning (the §7 future-work optimizer).

The paper's conclusion proposes "the development of an optimizer that
intelligently determines when to leverage traditional data layouts and
index structures for exact query processing and when to leverage a
scramble for approximate results".  This module implements that optimizer
for AVG queries.

The planner draws a small *pilot* prefix from the scramble (a valid
without-replacement sample, so its statistics are unbiased), estimates each
aggregate view's selectivity, mean, and spread, and then uses the
closed-form width formulas of :mod:`repro.bounders.theory` to predict how
many in-view samples the chosen bounder needs to satisfy the query's
stopping condition.  Dividing by the view selectivity converts samples to
scanned rows; if the prediction exceeds a configurable fraction of the
table, scanning approximately would cost as much as running exactly, and
the planner recommends Exact — the regime Table 5's F-q5/F-q6 rows exhibit,
where "techniques like Hoeffding … actually ran more slowly than Exact".

The plan is advisory only.  Guarantees never depend on it: whichever mode
is chosen, execution still certifies its answers (approximate runs use SSI
bounds; exact runs are exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bounders.theory import samples_for_width
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scramble import Scramble
from repro.stats.delta import DEFAULT_DELTA
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
)

__all__ = ["PlanEstimate", "QueryPlanner", "DEFAULT_PILOT_ROWS", "DEFAULT_EXACT_CUTOVER"]

#: Pilot prefix size: large enough for stable selectivity/σ estimates on
#: the workloads evaluated, small next to any realistic scramble.
DEFAULT_PILOT_ROWS = 20_000

#: Predicted scan fraction above which Exact is recommended.  Approximate
#: execution pays per-round bounder CPU on top of row access, so the
#: cutover sits below 1.0.
DEFAULT_EXACT_CUTOVER = 0.5


@dataclass(frozen=True)
class PlanEstimate:
    """The planner's recommendation and the forecast behind it.

    Attributes
    ----------
    mode:
        ``"approximate"`` or ``"exact"``.
    expected_samples:
        Predicted in-view samples needed by the bottleneck view.
    expected_rows_scanned:
        Predicted scramble rows scanned before termination (samples divided
        by the bottleneck view's selectivity, capped at the table size).
    scan_fraction:
        ``expected_rows_scanned / num_rows``.
    bottleneck:
        Group key of the view predicted to terminate last (``()`` for
        scalar queries).
    reason:
        One-line human-readable justification.
    """

    mode: str
    expected_samples: int
    expected_rows_scanned: int
    scan_fraction: float
    bottleneck: tuple
    reason: str


@dataclass
class _ViewPilot:
    """Pilot statistics for one aggregate view."""

    key: tuple
    rows: int
    mean: float
    std: float
    selectivity: float
    lo: float = 0.0
    hi: float = 0.0


class QueryPlanner:
    """Predicts whether a query should run approximately or exactly.

    Parameters
    ----------
    scramble:
        The store the query would run against.
    bounder_name:
        Width model.  ``"hoeffding"``/``"bernstein"`` plan with the catalog
        range; the ``"+rt"`` variants (e.g. ``"bernstein+rt"``) model
        RangeTrim's effect by planning with each view's *pilot-observed*
        range instead — the very range RangeTrim converges to online (§3.2).
    delta:
        The δ the real execution would use.
    pilot_rows:
        Scramble prefix length used for pilot statistics.
    exact_cutover:
        Scan fraction above which Exact is recommended.
    """

    def __init__(
        self,
        scramble: Scramble,
        bounder_name: str = "bernstein",
        delta: float = DEFAULT_DELTA,
        pilot_rows: int = DEFAULT_PILOT_ROWS,
        exact_cutover: float = DEFAULT_EXACT_CUTOVER,
    ) -> None:
        if not 0.0 < exact_cutover <= 1.0:
            raise ValueError(f"exact_cutover must be in (0, 1], got {exact_cutover}")
        if pilot_rows < 1:
            raise ValueError(f"pilot_rows must be >= 1, got {pilot_rows}")
        self.scramble = scramble
        self.width_model = "bernstein" if "bernstein" in bounder_name else "hoeffding"
        self.trim_range = bounder_name.endswith("+rt")
        self.delta = delta
        self.pilot_rows = min(pilot_rows, scramble.num_rows)
        self.exact_cutover = exact_cutover

    # ------------------------------------------------------------------

    def _pilot_views(self, query: Query) -> list[_ViewPilot]:
        """Per-view pilot statistics from the scramble prefix."""
        table = self.scramble.table
        rows = np.arange(self.pilot_rows)
        mask = query.predicate.mask(table, rows)
        matching = rows[mask]
        values = (
            table.continuous(query.column)[matching]
            if isinstance(query.column, str)
            else query.column.evaluate(table, matching)
        )
        if not query.group_by:
            groups = {(): (matching, values)}
        else:
            combined = None
            for column in query.group_by:
                codes = table.categorical(column).codes[matching]
                card = table.categorical(column).cardinality
                combined = codes.astype(np.int64) if combined is None else combined * card + codes
            groups = {}
            for code in np.unique(combined):
                member = combined == code
                key_codes = []
                remaining = int(code)
                for column in reversed(query.group_by):
                    card = table.categorical(column).cardinality
                    key_codes.append(remaining % card)
                    remaining //= card
                key = tuple(
                    table.categorical(column).dictionary[kc]
                    for column, kc in zip(query.group_by, reversed(key_codes))
                )
                groups[key] = (matching[member], values[member])
        pilots = []
        for key, (member_rows, member_values) in groups.items():
            count = member_rows.size
            if count == 0:
                continue
            pilots.append(
                _ViewPilot(
                    key=key,
                    rows=count,
                    mean=float(member_values.mean()),
                    std=float(member_values.std()),
                    selectivity=count / self.pilot_rows,
                    lo=float(member_values.min()),
                    hi=float(member_values.max()),
                )
            )
        return pilots

    def _target_width(self, query: Query, pilot: _ViewPilot) -> float:
        """CI width the stopping condition needs for this view (estimate)."""
        stopping = query.stopping
        if isinstance(stopping, AbsoluteAccuracy):
            return stopping.epsilon
        if isinstance(stopping, RelativeAccuracy):
            # width ≈ 2·ε·|mean| suffices for the relative-error statistic
            # when the interval is centred near the mean.
            magnitude = abs(pilot.mean)
            return math.inf if magnitude == 0.0 else 2.0 * stopping.epsilon * magnitude
        if isinstance(stopping, ThresholdSide):
            # The interval must clear the threshold: width ≈ 2·|mean − v|.
            gap = abs(pilot.mean - stopping.threshold)
            return math.inf if gap == 0.0 else 2.0 * gap
        if isinstance(stopping, SamplesTaken):
            return math.nan  # handled directly in plan()
        # Top-K / ordering conditions need pairwise gaps; plan pessimistically
        # with the smallest pairwise mean gap (computed by the caller).
        return math.nan

    def plan(self, query: Query) -> PlanEstimate:
        """Forecast the query's cost and recommend an execution mode."""
        if query.aggregate is not AggregateFunction.AVG:
            return PlanEstimate(
                mode="approximate",
                expected_samples=0,
                expected_rows_scanned=0,
                scan_fraction=0.0,
                bottleneck=(),
                reason=(
                    f"{query.aggregate.value} queries always benefit from "
                    "sampling (selectivity CIs shrink fast); no width model needed"
                ),
            )
        n = self.scramble.num_rows
        pilots = self._pilot_views(query)
        if not pilots:
            return PlanEstimate(
                mode="exact",
                expected_samples=n,
                expected_rows_scanned=n,
                scan_fraction=1.0,
                bottleneck=(),
                reason="pilot found no matching rows; selectivity too low to forecast",
            )
        if isinstance(query.stopping, SamplesTaken):
            worst = max(pilots, key=lambda p: query.stopping.m / p.selectivity)
            scanned = min(int(query.stopping.m / worst.selectivity), n)
            return self._decide(query.stopping.m, scanned, n, worst.key)

        gap_width = self._pairwise_gap_width(query, pilots)
        catalog_bounds = self._column_bounds(query)
        worst_scanned, worst_samples, worst_key = 0, 0, ()
        for pilot in pilots:
            width = self._target_width(query, pilot)
            if math.isnan(width):
                width = gap_width
            if math.isinf(width):
                samples = view_rows = n
            else:
                bounds = (
                    (pilot.lo, pilot.hi) if self.trim_range else catalog_bounds
                )
                view_size = max(int(pilot.selectivity * n), 1)
                samples = samples_for_width(
                    self.width_model, width, view_size, bounds[0], bounds[1],
                    self.delta, sigma=pilot.std,
                )
                view_rows = min(int(samples / pilot.selectivity), n)
            if view_rows >= worst_scanned:
                worst_scanned, worst_samples, worst_key = view_rows, samples, pilot.key
        return self._decide(worst_samples, worst_scanned, n, worst_key)

    # ------------------------------------------------------------------

    def _column_bounds(self, query: Query) -> tuple[float, float]:
        table = self.scramble.table
        if isinstance(query.column, str):
            bounds = table.catalog.bounds(query.column)
            return bounds.a, bounds.b
        bounds_by_column = {
            name: table.catalog.bounds(name) for name in query.column.columns()
        }
        derived = query.column.range_bounds(bounds_by_column)
        return derived.a, derived.b

    def _pairwise_gap_width(self, query: Query, pilots: list[_ViewPilot]) -> float:
        """Target width for separation-style conditions: the smallest gap
        between adjacent group means (each CI must be narrower than the gap
        for the intervals to disentangle)."""
        if len(pilots) < 2:
            return math.inf
        means = sorted(pilot.mean for pilot in pilots)
        gaps = [second - first for first, second in zip(means, means[1:])]
        smallest = min(gaps)
        return smallest if smallest > 0.0 else math.inf

    def _decide(
        self, samples: int, scanned: int, n: int, bottleneck: tuple
    ) -> PlanEstimate:
        fraction = scanned / n
        if fraction >= self.exact_cutover:
            mode, reason = "exact", (
                f"predicted scan of {fraction:.0%} of the table exceeds the "
                f"{self.exact_cutover:.0%} cutover; approximate execution "
                "would pay bounder overhead for a near-full scan"
            )
        else:
            mode, reason = "approximate", (
                f"predicted scan of {fraction:.0%} of the table; early "
                "termination expected to pay off"
            )
        return PlanEstimate(
            mode=mode,
            expected_samples=samples,
            expected_rows_scanned=scanned,
            scan_fraction=fraction,
            bottleneck=bottleneck,
            reason=reason,
        )
