"""Exact hypergeometric confidence intervals for COUNT (§4.1).

After scanning ``r`` rows of an ``R``-row scramble, the number of rows seen
that belong to an aggregate view of (unknown) size ``N`` "is a
hypergeometric random variable" (§4.1).  The paper bounds the view's
selectivity with Hoeffding-Serfling (Lemma 5) for simplicity but notes that
"one could use bounds specifically tailored to the hypergeometric
distribution (or even perform an exact computation)".  This module performs
that exact computation.

The CI for ``N`` is the classical exact test inversion: the (1 − δ)
interval is the set of population view sizes ``K`` that a level-δ two-sided
test would not reject given the observed in-view count ``m_v``::

    N_lo = min{ K : P(X ≥ m_v | K) > δ/2 }
    N_hi = max{ K : P(X ≤ m_v | K) > δ/2 }

where ``X ~ Hypergeometric(R, K, r)``.  Both tail probabilities are
monotone in ``K`` (larger view sizes stochastically increase the in-view
count), so each endpoint is found by binary search with O(log R) exact tail
evaluations.

Compared with Lemma 5 the exact interval is never wider and is much tighter
at small ``r`` or extreme selectivities — the sparse-group regime that
bottlenecks GROUP BY queries (§5.4.1).  The tradeoff is CPU: each bound
costs ~2·log₂(R) hypergeometric tail sums instead of one square root, which
is why the executor keeps Lemma 5 as its default (``count_method``).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as _scipy_stats

from repro.bounders.base import Interval
from repro.fastframe.count import DEFAULT_ALPHA, SelectivityState

__all__ = [
    "hypergeometric_count_interval",
    "hypergeometric_count_interval_batch",
    "hypergeometric_upper_bound_population",
    "hypergeometric_upper_bound_population_batch",
    "upper_tail",
    "lower_tail",
]


def upper_tail(m_v: int, population: int, view_size: int, draws: int) -> float:
    """``P(X >= m_v)`` for X ~ Hypergeometric(population, view_size, draws).

    Exact (scipy's survival function is a sum of exact pmf terms).
    """
    return float(_scipy_stats.hypergeom.sf(m_v - 1, population, view_size, draws))


def lower_tail(m_v: int, population: int, view_size: int, draws: int) -> float:
    """``P(X <= m_v)`` for X ~ Hypergeometric(population, view_size, draws)."""
    return float(_scipy_stats.hypergeom.cdf(m_v, population, view_size, draws))


def _feasible_range(m_v: int, population: int, draws: int) -> tuple[int, int]:
    """View sizes consistent with seeing ``m_v`` of ``draws`` rows in-view.

    ``K >= m_v`` (the view holds at least the rows seen in it) and
    ``population - K >= draws - m_v`` (the complement holds the rest).
    """
    return m_v, population - (draws - m_v)


def _search_smallest(lo: int, hi: int, accepts) -> int:
    """Smallest K in [lo, hi] with ``accepts(K)``; monotone predicate.

    ``accepts`` must be False-then-True as K grows.  ``hi`` is assumed to
    satisfy the predicate (the caller passes a feasible extreme).
    """
    while lo < hi:
        mid = (lo + hi) // 2
        if accepts(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _search_largest(lo: int, hi: int, accepts) -> int:
    """Largest K in [lo, hi] with ``accepts(K)``; True-then-False in K."""
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if accepts(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def hypergeometric_count_interval(
    state: SelectivityState, scramble_rows: int, delta: float
) -> Interval:
    """Exact (1 − δ) CI for the view cardinality N by test inversion.

    Drop-in replacement for :func:`repro.fastframe.count.count_interval`
    (same signature and semantics, tighter result).  Returns the trivial
    ``[0, R]`` before any row is covered.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    r, m_v = state.covered, state.in_view
    if r == 0:
        return Interval(0.0, float(scramble_rows))
    if r >= scramble_rows:
        return Interval(float(m_v), float(m_v))  # census: N is known exactly
    k_min, k_max = _feasible_range(m_v, scramble_rows, r)
    half = delta / 2.0
    lo = _search_smallest(
        k_min, k_max, lambda k: upper_tail(m_v, scramble_rows, k, r) > half
    )
    hi = _search_largest(
        k_min, k_max, lambda k: lower_tail(m_v, scramble_rows, k, r) > half
    )
    return Interval(float(lo), float(max(hi, lo)))


def _search_smallest_batch(lo: np.ndarray, hi: np.ndarray, accepts) -> np.ndarray:
    """Lockstep vectorized :func:`_search_smallest` across many views.

    ``accepts(K)`` takes and returns arrays aligned with ``lo``/``hi``.
    Every view's independent binary search advances one level per
    iteration, so the whole batch finishes in O(log R) *vectorized* tail
    evaluations instead of O(V · log R) scalar ones — the same trick the
    executor uses for every per-round quantity.  Results are identical to
    the scalar search (same monotone predicate, same midpoints).
    """
    lo = lo.copy()
    hi = hi.copy()
    while True:
        open_mask = lo < hi
        if not open_mask.any():
            return lo
        mid = (lo[open_mask] + hi[open_mask]) // 2
        good = accepts(mid, open_mask)
        sub_hi = hi[open_mask]
        sub_lo = lo[open_mask]
        hi[open_mask] = np.where(good, mid, sub_hi)
        lo[open_mask] = np.where(good, sub_lo, mid + 1)


def _search_largest_batch(lo: np.ndarray, hi: np.ndarray, accepts) -> np.ndarray:
    """Lockstep vectorized :func:`_search_largest` (True-then-False in K)."""
    lo = lo.copy()
    hi = hi.copy()
    while True:
        open_mask = lo < hi
        if not open_mask.any():
            return lo
        mid = (lo[open_mask] + hi[open_mask] + 1) // 2
        good = accepts(mid, open_mask)
        sub_hi = hi[open_mask]
        sub_lo = lo[open_mask]
        lo[open_mask] = np.where(good, mid, sub_lo)
        hi[open_mask] = np.where(good, sub_hi, mid - 1)


def hypergeometric_count_interval_batch(
    in_view: np.ndarray, covered: np.ndarray, scramble_rows: int, delta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`hypergeometric_count_interval` over view arrays.

    Exactly the scalar test inversion per view, but the binary searches of
    all views run in lockstep so each of the ~2·log₂(R) steps is a single
    vectorized scipy tail evaluation.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    m_v = np.asarray(in_view, dtype=np.int64)
    r = np.asarray(covered, dtype=np.int64)
    half = delta / 2.0
    k_min = m_v.copy()
    k_max = scramble_rows - (r - m_v)

    def accepts_lo(mid, open_mask):
        sub = _scipy_stats.hypergeom.sf(
            m_v[open_mask] - 1, scramble_rows, mid, r[open_mask]
        )
        return sub > half

    def accepts_hi(mid, open_mask):
        sub = _scipy_stats.hypergeom.cdf(
            m_v[open_mask], scramble_rows, mid, r[open_mask]
        )
        return sub > half

    lo = _search_smallest_batch(k_min, k_max, accepts_lo).astype(np.float64)
    hi = _search_largest_batch(k_min, k_max, accepts_hi).astype(np.float64)
    hi = np.maximum(hi, lo)
    # Degenerate regimes handled after the fact, as the scalar version.
    uncovered = r == 0
    lo[uncovered] = 0.0
    hi[uncovered] = float(scramble_rows)
    census = r >= scramble_rows
    lo[census] = m_v[census].astype(np.float64)
    hi[census] = m_v[census].astype(np.float64)
    return lo, hi


def hypergeometric_upper_bound_population_batch(
    in_view: np.ndarray,
    covered: np.ndarray,
    scramble_rows: int,
    delta: float,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """Vectorized :func:`hypergeometric_upper_bound_population`."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    m_v = np.asarray(in_view, dtype=np.int64)
    r = np.asarray(covered, dtype=np.int64)
    budget = (1.0 - alpha) * delta
    if budget <= 0.0 or not math.isfinite(budget):
        return np.full(m_v.shape, scramble_rows, dtype=np.int64)

    def accepts(mid, open_mask):
        sub = _scipy_stats.hypergeom.cdf(
            m_v[open_mask], scramble_rows, mid, r[open_mask]
        )
        return sub > budget

    k_min = m_v.copy()
    k_max = scramble_rows - (r - m_v)
    n_plus = _search_largest_batch(k_min, k_max, accepts)
    n_plus = np.maximum(np.maximum(n_plus, m_v), 1)
    n_plus[r == 0] = scramble_rows
    census = r >= scramble_rows
    n_plus[census] = np.maximum(m_v[census], 1)
    return n_plus


def hypergeometric_upper_bound_population(
    state: SelectivityState,
    scramble_rows: int,
    delta: float,
    alpha: float = DEFAULT_ALPHA,
) -> int:
    """Exact one-sided N⁺ with failure probability ``(1 − α)·δ``.

    Drop-in replacement for
    :func:`repro.fastframe.count.upper_bound_population` under the Theorem 3
    budget split: the largest view size the data does not reject at level
    ``(1 − α)·δ``.  Because it is never larger than Lemma 5's N⁺ and every
    bounder satisfies dataset-size monotonicity (§3.3), substituting it
    tightens AVG intervals without affecting soundness.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    r, m_v = state.covered, state.in_view
    if r == 0:
        return scramble_rows
    if r >= scramble_rows:
        return max(m_v, 1)
    budget = (1.0 - alpha) * delta
    if budget <= 0.0 or not math.isfinite(budget):
        return scramble_rows
    k_min, k_max = _feasible_range(m_v, scramble_rows, r)
    n_plus = _search_largest(
        k_min, k_max, lambda k: lower_tail(m_v, scramble_rows, k, r) > budget
    )
    return max(n_plus, m_v, 1)
