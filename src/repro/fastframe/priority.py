"""Priority sampling [22, 9, 62]: an outlier-robust SUM baseline (§6).

Priority sampling is the related-work access strategy the paper singles out
as "particularly useful for coping with outliers": for values ``{w_i}`` it
draws ``α_i ~ Unif(0, 1)`` i.i.d., assigns each tuple the priority
``q_i = w_i / α_i``, and keeps the ``k`` tuples with the largest
priorities.  With ``τ`` the (k+1)-th largest priority, the estimator

    SUM ≈ Σ_{i ∈ sample} max(w_i, τ)

is unbiased for ``Σ_i w_i`` — and it remains unbiased for the sum over any
*subset* (an arbitrary filter) when restricted to sampled tuples matching
the filter [9].  Large values are sampled with probability approaching 1,
so a handful of outliers cannot blow up the estimator's variance the way
they do for uniform sampling.

The paper also records the scheme's limitations (§6), which this module
inherits faithfully: the aggregated attribute must be known ahead of time
(the sample is *per column*), values must be non-negative, and arbitrary
derived expressions are unsupported (they would reshuffle the priorities).
Confidence intervals for priority sampling (Thorup [62]) are asymptotic,
based on the per-item Horvitz-Thompson variance estimator
``v̂ = Σ_{i ∈ sample, w_i < τ} τ·(τ − w_i)`` — they are *not* SSI, which is
the structural reason the paper's scramble-based approach keeps guarantees
where priority sampling cannot.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as _scipy_stats

from repro.bounders.base import Interval
from repro.fastframe.predicate import Predicate
from repro.fastframe.table import Table

__all__ = ["PrioritySampleIndex"]


class PrioritySampleIndex:
    """Offline priority sample of one non-negative continuous column.

    Parameters
    ----------
    table:
        The base table (kept by reference for filter evaluation over the
        sampled rows).
    column:
        The aggregated column; values must be non-negative.
    k:
        Sample size.  ``k >= num_rows`` keeps everything and estimates
        become exact (``τ = 0``).
    rng:
        Randomness for the priorities; seed for reproducible samples.
    """

    def __init__(
        self,
        table: Table,
        column: str,
        k: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"sample size k must be >= 1, got {k}")
        values = table.continuous(column)
        if values.size == 0:
            raise ValueError("cannot priority-sample an empty table")
        if float(values.min()) < 0.0:
            raise ValueError(
                f"priority sampling requires non-negative values; column "
                f"{column!r} has minimum {values.min()} (a limitation the "
                "paper notes in §6)"
            )
        rng = rng or np.random.default_rng()
        self.table = table
        self.column = column
        self.k = min(k, values.size)

        alphas = rng.uniform(size=values.size)
        with np.errstate(divide="ignore"):
            priorities = np.where(alphas > 0.0, values / alphas, np.inf)
        # Zero-valued rows get priority 0 and can never enter the sample —
        # harmless, as they contribute nothing to any subset sum.
        if self.k >= values.size:
            order = np.argsort(priorities)[::-1]
            self.row_ids = order
            self.threshold = 0.0
        else:
            order = np.argpartition(priorities, -(self.k + 1))
            top = order[-(self.k + 1):]
            top = top[np.argsort(priorities[top])[::-1]]
            self.row_ids = top[: self.k]
            self.threshold = float(priorities[top[self.k]])
        self.weights = values[self.row_ids]
        #: Per-sampled-row estimator contributions max(w_i, τ).
        self.adjusted = np.maximum(self.weights, self.threshold)

    @property
    def num_rows(self) -> int:
        """Rows in the underlying table."""
        return self.table.num_rows

    def _sample_mask(self, predicate: Predicate | None) -> np.ndarray:
        if predicate is None:
            return np.ones(self.row_ids.shape, dtype=bool)
        return predicate.mask(self.table, self.row_ids)

    def sum_estimate(self, predicate: Predicate | None = None) -> float:
        """Unbiased estimate of ``SUM(column)`` over rows matching the filter.

        Evaluates the predicate on the *k sampled rows only* — the
        efficiency contract of subset-sum priority sampling [9].
        """
        mask = self._sample_mask(predicate)
        return float(self.adjusted[mask].sum())

    def variance_estimate(self, predicate: Predicate | None = None) -> float:
        """Unbiased variance estimate ``Σ τ·(τ − w_i)`` over small sampled rows.

        Per-item Horvitz-Thompson: conditioned on τ, row i enters the
        sample with probability ``min(1, w_i/τ)``; rows with ``w_i >= τ``
        are sampled surely and contribute zero variance ([22], Theorem 2
        gives zero covariance between items).
        """
        mask = self._sample_mask(predicate)
        weights = self.weights[mask]
        small = weights < self.threshold
        return float((self.threshold * (self.threshold - weights[small])).sum())

    def sum_interval(
        self, delta: float, predicate: Predicate | None = None
    ) -> Interval:
        """Asymptotic (1 − δ) CI for the subset SUM (Thorup-style [62]).

        Normal approximation around the unbiased estimate using the
        unbiased variance estimator; clipped below at zero (weights are
        non-negative).  **Not SSI** — included as the related-work
        comparison point, not as a with-guarantees bound.
        """
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        estimate = self.sum_estimate(predicate)
        spread = math.sqrt(max(self.variance_estimate(predicate), 0.0))
        z = float(_scipy_stats.norm.ppf(1.0 - delta / 2.0))
        return Interval(max(estimate - z * spread, 0.0), estimate + z * spread)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrioritySampleIndex(column={self.column!r}, k={self.k}, "
            f"threshold={self.threshold:.4g})"
        )
