"""Row predicates for filters (WHERE clauses).

Predicates are small composable AST nodes evaluated vectorized against a
:class:`~repro.fastframe.table.Table` — either over the whole table (exact
execution) or over a slice of row indices (block-at-a-time approximate
execution).  Equality/membership predicates over categorical columns
additionally expose their matched dictionary codes so the scan strategies
can consult block bitmap indexes to skip blocks that cannot satisfy the
filter (§4.3, and the Scan strategy note in §5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.fastframe.table import Table

__all__ = ["Predicate", "Eq", "In", "Compare", "And", "Or", "Not", "TruePredicate"]


class Predicate(ABC):
    """Boolean row filter."""

    @abstractmethod
    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        """Boolean mask of matching rows (over ``rows`` or the full table)."""

    def categorical_requirements(self, table: Table) -> dict[str, set[int]]:
        """Per-column sets of dictionary codes any matching row *must* have.

        Used for bitmap-based block skipping: a block can be skipped when,
        for some required column, none of its required codes appear in the
        block.  Only conjunctive requirements are reported (a disjunction's
        branches are unioned per column only when both branches constrain
        the same column); returning ``{}`` simply disables skipping, never
        soundness.
        """
        return {}

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


def _column_slice(table: Table, name: str, rows: slice | np.ndarray | None) -> np.ndarray:
    from repro.fastframe.catalog import ColumnKind

    if table.column_kind(name) is ColumnKind.CATEGORICAL:
        values = table.categorical(name).codes
    else:
        values = table.continuous(name)
    if rows is None:
        return values
    return values[rows]


class TruePredicate(Predicate):
    """The always-true filter (queries without a WHERE clause)."""

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        reference = _column_slice(table, table.columns()[0], rows)
        return np.ones(reference.shape, dtype=bool)

    def __repr__(self) -> str:
        return "TRUE"


class Eq(Predicate):
    """``column = value`` over a categorical column (e.g. Origin = 'ORD')."""

    def __init__(self, column: str, value) -> None:
        self.column = column
        self.value = value
        self._resolved: tuple[object, int] | None = None

    def _code(self, table: Table) -> int:
        # Resolve the dictionary code once per column *object*: the scan
        # loop calls mask() per window, and re-resolving was O(windows).
        # Keyed by identity (a held reference, so ids cannot be recycled);
        # appends replace the column object, invalidating the cache.
        column = table.categorical(self.column)
        cached = self._resolved
        if cached is not None and cached[0] is column:
            return cached[1]
        code = column.code_of(self.value)
        self._resolved = (column, code)
        return code

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        codes = _column_slice(table, self.column, rows)
        return codes == self._code(table)

    def categorical_requirements(self, table: Table) -> dict[str, set[int]]:
        return {self.column: {self._code(table)}}

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


class In(Predicate):
    """``column IN (values…)`` over a categorical column."""

    def __init__(self, column: str, values) -> None:
        self.column = column
        self.values = tuple(values)
        if not self.values:
            raise ValueError("IN predicate requires at least one value")
        self._resolved: tuple[object, set[int], np.ndarray] | None = None

    def _resolve(self, table: Table) -> tuple[set[int], np.ndarray]:
        # Same per-column-object memoization as Eq._code (identity-keyed,
        # invalidated automatically when appends rebuild the column).
        column = table.categorical(self.column)
        cached = self._resolved
        if cached is not None and cached[0] is column:
            return cached[1], cached[2]
        codes = {column.code_of(value) for value in self.values}
        sorted_codes = np.array(sorted(codes), dtype=np.int64)
        self._resolved = (column, codes, sorted_codes)
        return codes, sorted_codes

    def _codes(self, table: Table) -> set[int]:
        return self._resolve(table)[0]

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        codes = _column_slice(table, self.column, rows)
        return np.isin(codes, self._resolve(table)[1])

    def categorical_requirements(self, table: Table) -> dict[str, set[int]]:
        return {self.column: self._codes(table)}

    def __repr__(self) -> str:
        return f"{self.column} IN {self.values!r}"


class Compare(Predicate):
    """``column <op> threshold`` over a continuous column (e.g. DepTime > 1050).

    Supported operators: ``">"``, ``">="``, ``"<"``, ``"<="``.
    """

    _OPS = {
        ">": np.greater,
        ">=": np.greater_equal,
        "<": np.less,
        "<=": np.less_equal,
    }

    def __init__(self, column: str, op: str, threshold: float) -> None:
        if op not in self._OPS:
            raise ValueError(f"unsupported operator {op!r}; expected one of {sorted(self._OPS)}")
        self.column = column
        self.op = op
        self.threshold = float(threshold)

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        values = _column_slice(table, self.column, rows)
        return self._OPS[self.op](values, self.threshold)

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.threshold}"


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("And requires at least one part")
        self.parts = parts

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        result = self.parts[0].mask(table, rows)
        for part in self.parts[1:]:
            result &= part.mask(table, rows)
        return result

    def categorical_requirements(self, table: Table) -> dict[str, set[int]]:
        # A conjunction inherits every conjunct's requirement; if two
        # conjuncts constrain the same column, any matching row must carry
        # a code from *each* set, so the intersection is required.
        merged: dict[str, set[int]] = {}
        for part in self.parts:
            for column, codes in part.categorical_requirements(table).items():
                merged[column] = merged[column] & codes if column in merged else set(codes)
        return merged

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("Or requires at least one part")
        self.parts = parts

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        result = self.parts[0].mask(table, rows)
        for part in self.parts[1:]:
            result |= part.mask(table, rows)
        return result

    def categorical_requirements(self, table: Table) -> dict[str, set[int]]:
        # Sound only when every branch constrains a column: a matching row
        # satisfies some branch, hence carries a code from that branch's
        # set, hence from the union.  If any branch leaves the column
        # unconstrained, no requirement can be claimed.
        requirements = [part.categorical_requirements(table) for part in self.parts]
        shared = set.intersection(*(set(req) for req in requirements)) if requirements else set()
        return {
            column: set.union(*(req[column] for req in requirements))
            for column in shared
        }

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation of a predicate (no block-skipping requirements claimable)."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def mask(self, table: Table, rows: slice | np.ndarray | None = None) -> np.ndarray:
        return ~self.inner.mask(table, rows)

    def __repr__(self) -> str:
        return f"NOT ({self.inner!r})"
