"""Block-based bitmap indexes over categorical attributes (§4, [50]).

FastFrame "uses block-based bitmaps over categorical attributes for
efficient processing of queries with predicates or groups".  For each
distinct value of an indexed categorical column, the index records which
blocks of the scramble contain at least one row with that value.  Active
scanning probes the index to decide whether a block can be skipped
(ActiveSync: one synchronous probe per block per active group; ActivePeek:
vectorized probes over a 1024-block lookahead batch — §4.3).

Representation: instead of dense bit matrices (values × blocks bits), each
value stores a *sorted array of block ids* — a compressed bitmap.  Single
probes are binary searches and batch probes are vectorized range lookups;
every probe increments a counter so experiments can report index traffic
alongside blocks fetched.
"""

from __future__ import annotations

import numpy as np

from repro.fastframe.scramble import Scramble

__all__ = ["BlockBitmapIndex", "LOOKAHEAD_BATCH_BLOCKS"]

#: ActivePeek's lookahead batch: 1024 blocks (25,600 rows at the default
#: block size), per §4.3.
LOOKAHEAD_BATCH_BLOCKS = 1024


class BlockBitmapIndex:
    """Bitmap index for one categorical column of a scramble.

    Parameters
    ----------
    scramble:
        The scramble whose block layout the index describes.
    column:
        Name of the categorical column to index.
    """

    def __init__(self, scramble: Scramble, column: str) -> None:
        self.column = column
        self.block_size = scramble.block_size
        self.num_blocks = scramble.num_blocks
        categorical = scramble.table.categorical(column)
        self.cardinality = categorical.cardinality
        codes = categorical.codes
        block_ids = np.arange(codes.size, dtype=np.int64) // self.block_size
        # Distinct (value, block) pairs, sorted by value then block: CSR-style
        # storage of each value's sorted block list.
        pairs = np.unique(
            codes.astype(np.int64) * self.num_blocks + block_ids
        )
        values = pairs // self.num_blocks
        blocks = pairs % self.num_blocks
        self._offsets = np.searchsorted(
            values, np.arange(self.cardinality + 1), side="left"
        )
        self._blocks = blocks
        #: Number of single-block probes served (ActiveSync-style access).
        self.probe_count = 0
        #: Number of batched lookahead probes served (ActivePeek-style).
        self.batch_probe_count = 0

    def blocks_of(self, code: int) -> np.ndarray:
        """Sorted block ids containing at least one row with ``code``."""
        if not 0 <= code < self.cardinality:
            raise IndexError(f"code {code} out of range [0, {self.cardinality})")
        return self._blocks[self._offsets[code] : self._offsets[code + 1]]

    def block_count_of(self, code: int) -> int:
        """Number of blocks containing ``code`` (no probe charged)."""
        return int(self._offsets[code + 1] - self._offsets[code])

    def probe(self, block_id: int, code: int) -> bool:
        """Synchronous single-block probe: does ``block_id`` contain ``code``?

        Models ActiveSync's per-block index query, which "typically results
        in cache misses" (§5.2); each call charges one probe.
        """
        self.probe_count += 1
        blocks = self.blocks_of(code)
        pos = int(np.searchsorted(blocks, block_id))
        return pos < blocks.size and int(blocks[pos]) == block_id

    def probe_batch(self, block_ids: np.ndarray, code: int) -> np.ndarray:
        """Vectorized probe over a lookahead batch of block ids.

        Returns a boolean mask aligned with ``block_ids``.  Models
        ActivePeek's batched bitmap iteration, where "bitmaps for the group
        tend to be in cache more often" (§4.3); the whole batch charges a
        single batched probe.
        """
        self.batch_probe_count += 1
        block_ids = np.asarray(block_ids, dtype=np.int64)
        blocks = self.blocks_of(code)
        positions = np.searchsorted(blocks, block_ids)
        positions = np.minimum(positions, blocks.size - 1) if blocks.size else positions
        if blocks.size == 0:
            return np.zeros(block_ids.shape, dtype=bool)
        return blocks[positions] == block_ids

    def probe_batch_any(self, block_ids: np.ndarray, codes) -> np.ndarray:
        """Does each block contain *any* of ``codes``?  One batched probe.

        Multi-code generalization of :meth:`probe_batch`: the per-code
        sorted block lists are merged once and the whole window is tested
        against the merged list with a single pair of binary searches —
        replacing the per-code probe loop the predicate mask and ActivePeek
        previously issued.  Charges one batched probe for the whole call
        (the iteration stays in cache exactly like ActivePeek's, §4.3).
        """
        self.batch_probe_count += 1
        block_ids = np.asarray(block_ids, dtype=np.int64)
        lists = [self.blocks_of(int(code)) for code in codes]
        if not lists:
            return np.zeros(block_ids.shape, dtype=bool)
        if len(lists) == 1:
            merged = lists[0]
        else:
            merged = np.unique(np.concatenate(lists))
        if merged.size == 0:
            return np.zeros(block_ids.shape, dtype=bool)
        positions = np.minimum(np.searchsorted(merged, block_ids), merged.size - 1)
        return merged[positions] == block_ids

    def reset_counters(self) -> None:
        """Zero the probe counters (between experiment runs)."""
        self.probe_count = 0
        self.batch_probe_count = 0


def block_group_presence(
    indexes: dict[str, BlockBitmapIndex],
    block_ids: np.ndarray,
    group_columns: tuple[str, ...],
    group_codes: tuple[int, ...],
    batched: bool,
) -> np.ndarray:
    """Mask over ``block_ids``: may the block contain the given group?

    A group keyed by multiple categorical columns is *possibly present* in
    a block iff every per-column value is present (the conjunction is
    conservative: the block might hold the values in different rows, which
    merely costs a useless read, never a missed row).  Conversely a block
    where any value is absent is *certified free* of the group — the basis
    of both block skipping and the per-group covered-row accounting in the
    executor.

    Parameters
    ----------
    batched:
        If True, use vectorized batch probes (ActivePeek); otherwise one
        synchronous probe per block per column (ActiveSync).
    """
    block_ids = np.asarray(block_ids, dtype=np.int64)
    mask = np.ones(block_ids.shape, dtype=bool)
    for column, code in zip(group_columns, group_codes):
        index = indexes[column]
        if batched:
            mask &= index.probe_batch(block_ids, code)
        else:
            column_mask = np.fromiter(
                (index.probe(int(block), code) for block in block_ids),
                dtype=bool,
                count=block_ids.size,
            )
            mask &= column_mask
        if not mask.any():
            break
    return mask
