"""Offline stratified samples: the BlinkDB-style comparison class (§6).

The related-work survey contrasts the paper's *online* scramble-based
sampling with *offline* schemes that "materialize samples ahead-of-time
[21, 7, 6, 30] based off workload assumptions".  This module implements
that baseline so the tradeoff is measurable:

* For a **declared** workload — GROUP BY over a fixed column set — a
  :class:`StratifiedSampleStore` materializes one uniform
  without-replacement sample per stratum at load time.  Answering a
  matching query then touches only the pre-materialized samples (no scan
  at all), and because each stratum's population size is known exactly,
  SSI bounders apply at full strength — sparse groups get equal
  representation, which is the whole point of stratification.
* For an **undeclared** query — a different grouping, or any WHERE
  predicate — the strata are useless: a stratum sample filtered by an
  arbitrary predicate is *not* a uniform sample of the filtered stratum
  unless the predicate is independent of the sampling, and group-bys over
  other columns cannot be reassembled from per-stratum samples without
  bias.  The store refuses such queries (``UnsupportedQueryError``) rather
  than answer without guarantees — exactly the workload-rigidity the paper
  escapes by scrambling the whole table once.

The intended comparison (see ``tests/fastframe/test_stratified.py``): on
the declared workload the stratified store is strictly cheaper than
scanning a scramble; on anything else the scramble is the only one of the
two that can answer at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounders.base import ErrorBounder, Interval
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.predicate import TruePredicate
from repro.fastframe.table import Table
from repro.stats.delta import DEFAULT_DELTA

__all__ = ["StratifiedSampleStore", "StratumResult", "UnsupportedQueryError"]


class UnsupportedQueryError(ValueError):
    """The query's shape does not match the store's declared workload."""


@dataclass(frozen=True)
class StratumResult:
    """Certified per-stratum answer.

    Attributes
    ----------
    key:
        Decoded group-by values.
    estimate:
        Stratum sample mean.
    interval:
        (1 − δ/strata) CI for the stratum AVG; exact (degenerate) when the
        stratum is smaller than the per-stratum sample budget.
    population:
        Exact stratum size (known at build time).
    samples:
        Materialized sample size for the stratum.
    """

    key: tuple
    estimate: float
    interval: Interval
    population: int
    samples: int


class StratifiedSampleStore:
    """Pre-materialized per-group samples for one declared GROUP BY set.

    Parameters
    ----------
    table:
        The base table.
    group_by:
        The declared workload: the exact GROUP BY column set the store
        will serve.
    per_stratum:
        Sample cap per stratum (strata smaller than this are stored
        whole, making their aggregates exact — BlinkDB's small-group
        behaviour).
    rng:
        Randomness for the per-stratum samples.
    """

    def __init__(
        self,
        table: Table,
        group_by: tuple[str, ...],
        per_stratum: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not group_by:
            raise ValueError("declare at least one GROUP BY column to stratify on")
        if per_stratum < 1:
            raise ValueError(f"per_stratum must be >= 1, got {per_stratum}")
        rng = rng or np.random.default_rng()
        self.table = table
        self.group_by = tuple(group_by)
        self.per_stratum = per_stratum

        combined = None
        for column in self.group_by:
            categorical = table.categorical(column)
            codes = categorical.codes.astype(np.int64)
            combined = codes if combined is None else combined * categorical.cardinality + codes
        self._strata: dict[tuple, np.ndarray] = {}
        self._populations: dict[tuple, int] = {}
        for code in np.unique(combined):
            rows = np.flatnonzero(combined == code)
            key = self._decode(int(code))
            self._populations[key] = rows.size
            take = min(per_stratum, rows.size)
            self._strata[key] = rng.choice(rows, size=take, replace=False)

    def _decode(self, code: int) -> tuple:
        codes = []
        for column in reversed(self.group_by):
            card = self.table.categorical(column).cardinality
            codes.append(code % card)
            code //= card
        return tuple(
            self.table.categorical(column).dictionary[c]
            for column, c in zip(self.group_by, reversed(codes))
        )

    # ------------------------------------------------------------------

    @property
    def strata(self) -> tuple[tuple, ...]:
        """The decoded stratum keys."""
        return tuple(self._strata)

    @property
    def rows_materialized(self) -> int:
        """Total sampled rows stored (the store's footprint)."""
        return sum(rows.size for rows in self._strata.values())

    def _check_supported(self, query: Query) -> None:
        if query.aggregate is not AggregateFunction.AVG:
            raise UnsupportedQueryError(
                f"stratified store serves AVG only, got {query.aggregate.value}"
            )
        if tuple(query.group_by) != self.group_by:
            raise UnsupportedQueryError(
                f"store was stratified on {self.group_by}, cannot serve "
                f"GROUP BY {tuple(query.group_by)}; offline samples are "
                "workload-bound (§6) - use a scramble for ad-hoc queries"
            )
        if not isinstance(query.predicate, TruePredicate):
            raise UnsupportedQueryError(
                "per-stratum samples are not uniform samples of an "
                "arbitrarily filtered stratum; predicates are unsupported "
                "(the workload-assumption limitation of offline AQP, §6)"
            )
        if not isinstance(query.column, str):
            raise UnsupportedQueryError(
                "expression aggregates are not supported by this baseline"
            )

    def execute_avg(
        self,
        query: Query,
        bounder: ErrorBounder,
        delta: float = DEFAULT_DELTA,
    ) -> dict[tuple, StratumResult]:
        """Answer a declared-workload AVG query from the materialized strata.

        δ is divided across strata (the aggregate views of this query,
        §4.1).  No table rows are touched beyond the stored samples.
        """
        self._check_supported(query)
        values = self.table.continuous(query.column)
        bounds = self.table.catalog.bounds(query.column)
        per_stratum_delta = delta / max(len(self._strata), 1)
        results = {}
        for key, sample_rows in self._strata.items():
            population = self._populations[key]
            sample_values = values[sample_rows]
            estimate = float(sample_values.mean())
            if sample_rows.size >= population:
                interval = Interval(estimate, estimate)  # census stratum
            else:
                state = bounder.init_state()
                bounder.update_batch(state, sample_values)
                interval = bounder.confidence_interval(
                    state, bounds.a, bounds.b, population, per_stratum_delta
                )
            results[key] = StratumResult(
                key=key,
                estimate=estimate,
                interval=interval,
                population=population,
                samples=sample_rows.size,
            )
        return results
