"""Shared window materialization: gather each lookahead window once.

A :class:`WindowFrame` is the per-window materialization layer between the
scan cursor and the query runs.  PR 2's shared cursor deduplicated *block
fetches* across a dashboard's queries, but each
:class:`~repro.fastframe.executor.QueryRun` still re-gathered its value
arrays, combined group codes, and predicate masks privately per window —
O(queries × windows) gathers for work that is identical across queries.

The frame closes that gap.  Once per lookahead window the driver unions
the runs' block-fetch masks and builds one frame over the union:

* ``rows`` — the union-fetched row ids, in scan (block) order;
* :meth:`values` — per-column (or per-expression) value arrays, gathered
  once per distinct aggregate column however many queries consume it;
* :meth:`combined_codes` — per-(GROUP BY column set) combined mixed-radix
  group codes;
* :meth:`predicate_mask` — per-predicate boolean masks (every
  ``TruePredicate`` shares one entry; other predicates are keyed by
  object identity).

Each run then slices its private view through :meth:`element_selector`:
its block mask is a subset of the union, and because the union preserves
window order, ``rows[selector]`` is exactly what the run's own
``rows_of_blocks`` call used to return — the ingest arithmetic (stable
sorts, moment updates) consumes bit-identical arrays, so sharing the
gather cannot change any answer.  The solo execution path drives the same
frame (with its own mask as the union), so there is one code path and no
parity fork.

``values_gathered`` counts the value elements the frame actually gathered
— the benchmark's evidence that per-window value gathering happens once
per shared window, not once per query.
"""

from __future__ import annotations

import numpy as np

from repro.fastframe.predicate import Predicate, TruePredicate

__all__ = ["WindowFrame"]

#: All ``TruePredicate`` instances share one mask entry — distinct queries
#: without a WHERE clause each carry their own instance, but the mask is
#: the same all-ones array.
_TRUE_PREDICATE_KEY = "TRUE"


class WindowFrame:
    """One lookahead window's union fetch, materialized once for all runs.

    Parameters
    ----------
    scramble:
        The scramble the window's block ids refer to.
    window:
        The lookahead window of block ids (scan order).
    union_mask:
        Boolean fetch mask over ``window`` — the union of every consuming
        run's block mask (a solo run passes its own mask).
    """

    def __init__(
        self, scramble, window: np.ndarray, union_mask: np.ndarray
    ) -> None:
        self.scramble = scramble
        self.window = np.asarray(window, dtype=np.int64)
        self.union_mask = np.asarray(union_mask, dtype=bool)
        if self.union_mask.shape != self.window.shape:
            raise ValueError(
                f"union mask shape {self.union_mask.shape} does not match "
                f"window shape {self.window.shape}"
            )
        #: Fetched block ids (the union across consuming runs).
        self.blocks = self.window[self.union_mask]
        #: Union-fetched row ids, in block (scan) order.
        self.rows = scramble.rows_of_blocks(self.blocks)
        #: Total rows spanned by the window, fetched or skipped — Lemma 5's
        #: covered-row accounting input, identical for every consuming run.
        self.window_rows = scramble.count_rows_of_blocks(self.window)
        #: Value elements gathered by :meth:`values` (one count per
        #: distinct column/expression, not per consuming query).
        self.values_gathered = 0
        self._values: dict = {}
        self._combined: dict = {}
        self._masks: dict = {}
        self._mask_refs: list = []  # keep id()-keyed predicates alive
        self._block_of_row: np.ndarray | None = None

    # -- per-run slicing ------------------------------------------------

    def element_selector(self, mask: np.ndarray) -> np.ndarray | None:
        """Element mask over :attr:`rows` for one run's block mask.

        Returns ``None`` when the run's mask *is* the union (the common
        solo / identical-strategy case), so callers can skip the slice
        entirely.  ``mask`` must be a subset of the union mask.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.window.shape:
            raise ValueError(
                f"block mask shape {mask.shape} does not match window "
                f"shape {self.window.shape}"
            )
        if np.array_equal(mask, self.union_mask):
            return None
        if (mask & ~self.union_mask).any():
            raise ValueError(
                "block mask is not a subset of the frame's union mask"
            )
        # mask[union_mask] is one bool per fetched block, in scan order;
        # expanding it per block length yields the element mask.
        return mask[self.union_mask][self._row_blocks()]

    def _row_blocks(self) -> np.ndarray:
        """Fetched-block ordinal of each row of :attr:`rows` (lazy)."""
        if self._block_of_row is None:
            starts = self.blocks * self.scramble.block_size
            lengths = (
                np.minimum(starts + self.scramble.block_size, self.scramble.num_rows)
                - starts
            )
            self._block_of_row = np.repeat(
                np.arange(self.blocks.size, dtype=np.int64), lengths
            )
        return self._block_of_row

    # -- shared materializations ---------------------------------------

    def values(self, key, gather) -> np.ndarray:
        """Union value array for an aggregate column, gathered once.

        ``key`` identifies the column (``("column", name)``) or expression
        (``("expression", id(expr))``); ``gather`` maps row ids to values
        and is only called on the first request for a key.

        The gather is union-sized (all fetched rows, not just one query's
        predicate-passing rows): that is what lets queries with
        *different* predicates over the same column share one array.  For
        a highly selective solo query this trades at most one extra
        O(rows) gather per window — the same order as the predicate mask
        itself — for the cross-query sharing.
        """
        if key not in self._values:
            self._values[key] = gather(self.rows)
            self.values_gathered += int(self.rows.size)
        return self._values[key]

    def combined_codes(self, group_by: tuple[str, ...], provider) -> np.ndarray:
        """Union combined group codes for one GROUP BY column set."""
        if group_by not in self._combined:
            self._combined[group_by] = provider(self.rows)
        return self._combined[group_by]

    def predicate_mask(self, predicate: Predicate) -> np.ndarray:
        """Union predicate mask, evaluated once per distinct predicate."""
        if isinstance(predicate, TruePredicate):
            key = _TRUE_PREDICATE_KEY
        else:
            key = id(predicate)
        if key not in self._masks:
            self._masks[key] = predicate.mask(self.scramble.table, self.rows)
            if key is not _TRUE_PREDICATE_KEY:
                self._mask_refs.append(predicate)
        return self._masks[key]
