"""Shared window materialization: gather each lookahead window once.

A :class:`WindowFrame` is the per-window materialization layer between the
scan cursor and the query runs.  PR 2's shared cursor deduplicated *block
fetches* across a dashboard's queries, but each
:class:`~repro.fastframe.executor.QueryRun` still re-gathered its value
arrays, combined group codes, and predicate masks privately per window —
O(queries × windows) gathers for work that is identical across queries.

The frame closes that gap.  Once per lookahead window the driver unions
the runs' block-fetch masks and builds one frame over the union:

* ``rows`` — the union-fetched row ids, in scan (block) order;
* :meth:`values` — per-column (or per-expression) value arrays, gathered
  once per distinct aggregate column however many queries consume it;
* :meth:`combined_codes` — per-(GROUP BY column set) combined mixed-radix
  group codes;
* :meth:`predicate_mask` — per-predicate boolean masks (every
  ``TruePredicate`` shares one entry; other predicates are keyed by
  object identity).

Each run then slices its private view through :meth:`element_selector`:
its block mask is a subset of the union, and because the union preserves
window order, ``rows[selector]`` is exactly what the run's own
``rows_of_blocks`` call used to return — the ingest arithmetic (stable
sorts, moment updates) consumes bit-identical arrays, so sharing the
gather cannot change any answer.  The solo execution path drives the same
frame (with its own mask as the union), so there is one code path and no
parity fork.

``values_gathered`` counts the value elements the frame actually gathered
— the benchmark's evidence that per-window value gathering happens once
per shared window, not once per query.

**Shared-memory export.**  For parallel ingest the frame's materialized
arrays must be readable by worker processes without per-task copies:
:class:`SharedWindowExport` snapshots every array the frame has
materialized so far (row ids, the per-row fetched-block ordinals, value
arrays, combined group codes, predicate masks) into POSIX shared-memory
segments and hands workers a picklable descriptor;
:func:`attach_shared_frame` reconstructs zero-copy numpy views on the
worker side.  Workers treat the views as read-only and copy out only
their (much smaller) per-view results.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.fastframe.predicate import Predicate, TruePredicate

__all__ = [
    "WindowFrame",
    "SharedWindowExport",
    "attach_shared_frame",
    "live_export_segments",
    "predicate_key",
]

#: All ``TruePredicate`` instances share one mask entry — distinct queries
#: without a WHERE clause each carry their own instance, but the mask is
#: the same all-ones array.
_TRUE_PREDICATE_KEY = "TRUE"


def predicate_key(predicate: Predicate):
    """The frame-cache key of a predicate's mask.

    Every ``TruePredicate`` shares one entry; other predicates are keyed
    by object identity.  Exposed so the parallel driver can tell a worker
    which exported mask belongs to which query.
    """
    if isinstance(predicate, TruePredicate):
        return _TRUE_PREDICATE_KEY
    return id(predicate)


class WindowFrame:
    """One lookahead window's union fetch, materialized once for all runs.

    Parameters
    ----------
    scramble:
        The scramble the window's block ids refer to.
    window:
        The lookahead window of block ids (scan order).
    union_mask:
        Boolean fetch mask over ``window`` — the union of every consuming
        run's block mask (a solo run passes its own mask).
    """

    def __init__(
        self, scramble, window: np.ndarray, union_mask: np.ndarray
    ) -> None:
        self.scramble = scramble
        self.window = np.asarray(window, dtype=np.int64)
        self.union_mask = np.asarray(union_mask, dtype=bool)
        if self.union_mask.shape != self.window.shape:
            raise ValueError(
                f"union mask shape {self.union_mask.shape} does not match "
                f"window shape {self.window.shape}"
            )
        #: Fetched block ids (the union across consuming runs).
        self.blocks = self.window[self.union_mask]
        #: Union-fetched row ids, in block (scan) order.
        self.rows = scramble.rows_of_blocks(self.blocks)
        #: Total rows spanned by the window, fetched or skipped — Lemma 5's
        #: covered-row accounting input, identical for every consuming run.
        self.window_rows = scramble.count_rows_of_blocks(self.window)
        #: Value elements gathered by :meth:`values` (one count per
        #: distinct column/expression, not per consuming query).
        self.values_gathered = 0
        self._values: dict = {}
        self._combined: dict = {}
        self._masks: dict = {}
        self._mask_refs: list = []  # keep id()-keyed predicates alive
        self._block_of_row: np.ndarray | None = None

    # -- per-run slicing ------------------------------------------------

    def element_selector(self, mask: np.ndarray) -> np.ndarray | None:
        """Element mask over :attr:`rows` for one run's block mask.

        Returns ``None`` when the run's mask *is* the union (the common
        solo / identical-strategy case), so callers can skip the slice
        entirely.  ``mask`` must be a subset of the union mask.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.window.shape:
            raise ValueError(
                f"block mask shape {mask.shape} does not match window "
                f"shape {self.window.shape}"
            )
        if np.array_equal(mask, self.union_mask):
            return None
        if (mask & ~self.union_mask).any():
            raise ValueError(
                "block mask is not a subset of the frame's union mask"
            )
        # mask[union_mask] is one bool per fetched block, in scan order;
        # expanding it per block length yields the element mask.
        return mask[self.union_mask][self._row_blocks()]

    def _row_blocks(self) -> np.ndarray:
        """Fetched-block ordinal of each row of :attr:`rows` (lazy)."""
        if self._block_of_row is None:
            starts = self.blocks * self.scramble.block_size
            lengths = (
                np.minimum(starts + self.scramble.block_size, self.scramble.num_rows)
                - starts
            )
            self._block_of_row = np.repeat(
                np.arange(self.blocks.size, dtype=np.int64), lengths
            )
        return self._block_of_row

    # -- shared materializations ---------------------------------------

    def values(self, key, gather) -> np.ndarray:
        """Union value array for an aggregate column, gathered once.

        ``key`` identifies the column (``("column", name)``) or expression
        (``("expression", id(expr))``); ``gather`` maps row ids to values
        and is only called on the first request for a key.

        The gather is union-sized (all fetched rows, not just one query's
        predicate-passing rows): that is what lets queries with
        *different* predicates over the same column share one array.  For
        a highly selective solo query this trades at most one extra
        O(rows) gather per window — the same order as the predicate mask
        itself — for the cross-query sharing.
        """
        if key not in self._values:
            self._values[key] = gather(self.rows)
            self.values_gathered += int(self.rows.size)
        return self._values[key]

    def combined_codes(self, group_by: tuple[str, ...], provider) -> np.ndarray:
        """Union combined group codes for one GROUP BY column set."""
        if group_by not in self._combined:
            self._combined[group_by] = provider(self.rows)
        return self._combined[group_by]

    def predicate_mask(self, predicate: Predicate) -> np.ndarray:
        """Union predicate mask, evaluated once per distinct predicate."""
        key = predicate_key(predicate)
        if key not in self._masks:
            self._masks[key] = predicate.mask(self.scramble.table, self.rows)
            if key is not _TRUE_PREDICATE_KEY:
                self._mask_refs.append(predicate)
        return self._masks[key]

    def export_shared(self) -> "SharedWindowExport":
        """Snapshot the frame's materialized arrays into shared memory.

        Call after every consuming run's inputs (values, combined codes,
        predicate masks) have been materialized; the export is a frozen
        copy — later materializations are not visible to workers.
        """
        return SharedWindowExport(self)


#: Names of shared-memory segments created by exports in this process
#: and not yet released — the unlink audit the leak regression tests and
#: the driver's ``shm_cleanup_failures`` counter read.
_LIVE_SEGMENT_NAMES: set = set()


def live_export_segments() -> tuple:
    """Names of export segments this process has created but not yet
    released (sorted, for stable assertions)."""
    return tuple(sorted(_LIVE_SEGMENT_NAMES))


def _release_segments(segments: list) -> int:
    """Close + unlink every segment in ``segments``; return the number
    that could not be released.

    Shared between :meth:`SharedWindowExport.close` and the export's
    ``weakref.finalize`` guard: if a driver error path ever drops an
    export without closing it, the finalizer still unlinks the segments
    (at GC or interpreter exit) instead of stranding them in ``/dev/shm``
    until reboot.  The list is cleared in place so close() and the
    finalizer never double-release.
    """
    failures = 0
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            _LIVE_SEGMENT_NAMES.discard(segment.name)
        except (OSError, BufferError):  # pragma: no cover - held mapping
            failures += 1
        else:
            _LIVE_SEGMENT_NAMES.discard(segment.name)
    del segments[:]
    return failures


class SharedWindowExport:
    """One window frame's arrays in POSIX shared memory, plus a picklable
    descriptor worker processes attach to (:func:`attach_shared_frame`).

    The export owns the segments: keep it alive until every worker task
    over this window has returned, then :meth:`close` (which unlinks and
    returns the count of segments that would not release — the driver
    surfaces that as ``ExecutionMetrics.shm_cleanup_failures``).  A
    ``weakref.finalize`` guard releases the segments even if close() is
    never reached, and :func:`live_export_segments` audits what this
    process still holds.  Exports degrade gracefully — if the platform
    offers no shared memory, constructing one raises and the driver falls
    back to inline ingest.
    """

    def __init__(self, frame: WindowFrame) -> None:
        from multiprocessing import shared_memory

        self._segments: list = []
        # Registered before any segment exists: whatever __init__ manages
        # to create is covered even if it raises partway through.
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )
        arrays: dict = {
            ("rows",): frame.rows,
            ("row_blocks",): frame._row_blocks(),
        }
        # With an mmap block store attached, plain-column value arrays are
        # not copied into shm at all: workers attach the store by *path*
        # and gather the same rows from the same on-disk blocks —
        # identical bytes, minus the largest per-window segment.
        # Expression values (computed arrays) still travel via shm.
        store = getattr(frame.scramble, "storage", None)
        mmap_layout: dict = {}
        for key, array in frame._values.items():
            if (
                store is not None
                and isinstance(key, tuple)
                and len(key) == 2
                and key[0] == "column"
            ):
                mmap_layout[("values", key)] = (store.path, key[1])
            else:
                arrays[("values", key)] = array
        for group_by, array in frame._combined.items():
            arrays[("combined", group_by)] = array
        for key, array in frame._masks.items():
            arrays[("mask", key)] = array
        layout = {}
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                self._segments.append(segment)
                _LIVE_SEGMENT_NAMES.add(segment.name)
                if array.nbytes:
                    view = np.ndarray(
                        array.shape, dtype=array.dtype, buffer=segment.buf
                    )
                    view[...] = array
                    del view
                layout[name] = (segment.name, array.shape, array.dtype.str)
        except Exception:
            self.close()
            raise
        #: Picklable attachment recipe: segment names, shapes, dtypes,
        #: mmap-by-path value entries, and the frame scalars workers need
        #: (row count, window rows).
        self.descriptor = {
            "layout": layout,
            "mmap": mmap_layout,
            "rows_size": int(frame.rows.size),
            "window_rows": int(frame.window_rows),
        }

    def close(self) -> int:
        """Release (close + unlink) every segment.  Idempotent; returns
        the number of segments that could not be released."""
        return _release_segments(self._segments)


class AttachedFrame:
    """A worker-side zero-copy view of an exported window frame.

    ``fault`` is the chaos seam: a ``shm-attach-failure`` directive makes
    the attach raise *after* the first segment is mapped — the worker
    dies holding a live attachment, which is exactly the scenario the
    export's finalizer/unlink audit must survive.
    """

    def __init__(self, descriptor: dict, fault: dict | None = None) -> None:
        from multiprocessing import shared_memory

        self.rows_size: int = descriptor["rows_size"]
        self.window_rows: int = descriptor["window_rows"]
        self._segments = []
        self._arrays: dict = {}
        #: Value arrays the exporter left on disk: gathered lazily from
        #: the mmap block store on first access, then memoized.
        self._mmap_layout: dict = dict(descriptor.get("mmap", ()))
        try:
            for name, (segment_name, shape, dtype) in descriptor["layout"].items():
                # NB: attaching registers the name with the (process-tree-wide)
                # resource tracker on Python ≤ 3.12 — harmless here, because
                # registration is a set and the exporting process always
                # unlinks+unregisters each segment exactly once in close().
                segment = shared_memory.SharedMemory(name=segment_name)
                self._segments.append(segment)
                self._arrays[name] = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf
                )
                if fault is not None and fault.get("kind") == "shm-attach-failure":
                    from repro.testing.faults import InjectedAttachFailure

                    raise InjectedAttachFailure(
                        "injected attach failure after first segment"
                    )
        except BaseException:
            self.close()
            raise

    def array(self, *name) -> np.ndarray:
        """A named exported array (e.g. ``array("values", key)``).

        Shm-exported arrays are zero-copy views; mmap-by-path value
        entries are gathered from the block store on first request (the
        same ``values[rows]`` arithmetic the exporting process ran, over
        the same on-disk bytes — bit-identical input to the kernels).
        """
        name = tuple(name)
        if name not in self._arrays and name in self._mmap_layout:
            from repro.fastframe.storage import open_block_store

            store_path, column = self._mmap_layout[name]
            store = open_block_store(store_path, prefetch=False)
            self._arrays[name] = store.continuous(column)[self.array("rows")]
        return self._arrays[name]

    def close(self) -> None:
        """Drop the views and close the attachments (no unlink)."""
        self._arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass
        self._segments = []


def attach_shared_frame(
    descriptor: dict, fault: dict | None = None
) -> AttachedFrame:
    """Attach to a :class:`SharedWindowExport` descriptor (worker side)."""
    return AttachedFrame(descriptor, fault=fault)
