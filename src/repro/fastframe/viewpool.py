"""Struct-of-arrays per-view state for the vectorized executor core.

The seed executor kept one ``_ViewState`` object per aggregate view and
drove both ingest and bound recomputation with Python loops over every
view — interpreter overhead that dominates wall time for high-cardinality
GROUP BYs.  :class:`ViewPool` stores the same state as parallel numpy
arrays, one row per view, indexed by combined (mixed-radix) group code:

* sample and all-read moments (:class:`~repro.stats.streaming.MomentPool`);
* selectivity counters ``in_view`` / ``covered`` (Lemma 5's m_v and r);
* running-intersection endpoints for the value and COUNT intervals
  (Theorem 4's ``[max_k L_k, min_k R_k]``), plus the last certified
  intervals;
* ``active`` / ``dropped`` / ``exhausted`` flags;
* an opaque *bounder pool* holding every view's error-bounder state in the
  bounder's own struct-of-arrays layout.

Ingest then becomes a handful of ``np.bincount`` passes per scan window and
each OptStop round a fixed number of array expressions, regardless of the
number of views.  Row ``i`` of the pool evolves exactly like the scalar
``_ViewState`` fed the same rows (up to floating-point summation order);
the parity test-suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.stats.streaming import MomentPool
from repro.stopping.conditions import SnapshotColumns

__all__ = ["ViewPool"]


@dataclass
class ViewPool:
    """All per-view executor state, as parallel arrays (one row per view)."""

    codes: np.ndarray          #: sorted combined group codes (int64)
    key_codes: list            #: per-view tuples of per-column codes
    bounder_pool: Any          #: bounder-owned struct-of-arrays state bank
    sample: MomentPool         #: moments of the sampled (settled) values
    all_read: MomentPool       #: moments of every value read for the view
    in_view: np.ndarray        #: settled rows belonging to the view (int64)
    covered: np.ndarray        #: settled rows, Lemma 5's r (int64)
    run_lo: np.ndarray         #: value-interval running intersection (lo)
    run_hi: np.ndarray
    crun_lo: np.ndarray        #: COUNT-interval running intersection (lo)
    crun_hi: np.ndarray
    iv_lo: np.ndarray          #: last certified value interval
    iv_hi: np.ndarray
    civ_lo: np.ndarray         #: last certified COUNT interval
    civ_hi: np.ndarray
    active: np.ndarray         #: bool — group currently prioritized
    dropped: np.ndarray        #: bool — certified empty, out of the result
    exhausted: np.ndarray      #: bool — every row settled, aggregate exact

    @classmethod
    def build(
        cls, domain: np.ndarray, key_codes: list, bounder: ErrorBounder
    ) -> "ViewPool":
        """Pool over a (sorted) combined-code domain with fresh state."""
        size = int(domain.size)
        return cls(
            codes=np.asarray(domain, dtype=np.int64),
            key_codes=key_codes,
            bounder_pool=bounder.init_pool(size),
            sample=MomentPool(size),
            all_read=MomentPool(size),
            in_view=np.zeros(size, dtype=np.int64),
            covered=np.zeros(size, dtype=np.int64),
            run_lo=np.full(size, -np.inf),
            run_hi=np.full(size, np.inf),
            crun_lo=np.full(size, -np.inf),
            crun_hi=np.full(size, np.inf),
            iv_lo=np.full(size, -np.inf),
            iv_hi=np.full(size, np.inf),
            civ_lo=np.zeros(size),
            civ_hi=np.full(size, np.inf),
            active=np.ones(size, dtype=bool),
            dropped=np.zeros(size, dtype=bool),
            exhausted=np.zeros(size, dtype=bool),
        )

    @property
    def size(self) -> int:
        return self.codes.size

    def lookup(self, combined: np.ndarray) -> np.ndarray:
        """Pool row index per combined code (codes must be in the domain)."""
        return np.searchsorted(self.codes, combined)

    def snapshot_columns(self, a: float, b: float) -> SnapshotColumns:
        """Struct-of-arrays snapshot of the non-dropped views.

        Views whose certified interval is still trivial report the full
        value range ``[a, b]``; estimates fall back to the interval
        midpoint until the view has a sample.  The returned columns carry
        a ``rows`` attribute mapping each snapshot row back to its pool
        row, so callers (stopping-condition refresh, progressive round
        reporting) can write activity flags or decode group keys.
        """
        live = np.flatnonzero(~self.dropped)
        lo = self.iv_lo[live]
        hi = self.iv_hi[live]
        trivial = ~(np.isfinite(lo) & np.isfinite(hi))
        lo = np.where(trivial, a, lo)
        hi = np.where(trivial, b, hi)
        samples = self.sample.count[live]
        estimate = np.where(
            samples > 0, self.sample.mean[live], 0.5 * (lo + hi)
        )
        columns = SnapshotColumns(
            keys=self.codes[live],
            lo=lo,
            hi=hi,
            estimate=estimate,
            samples=samples,
            exhausted=self.exhausted[live],
        )
        columns.rows = live  # pool row per snapshot row
        return columns

    @staticmethod
    def _fold(
        run_lo: np.ndarray,
        run_hi: np.ndarray,
        idx: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array form of ``RunningIntersection.fold`` (with midpoint collapse)."""
        folded_lo = np.maximum(run_lo[idx], lo)
        folded_hi = np.minimum(run_hi[idx], hi)
        inverted = folded_lo > folded_hi
        if inverted.any():
            mid = 0.5 * (folded_lo[inverted] + folded_hi[inverted])
            folded_lo[inverted] = mid
            folded_hi[inverted] = mid
        run_lo[idx] = folded_lo
        run_hi[idx] = folded_hi
        return folded_lo, folded_hi

    def fold_value(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the value running intersections of rows ``idx``."""
        return self._fold(self.run_lo, self.run_hi, idx, lo, hi)

    def fold_count(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the COUNT running intersections of rows ``idx``."""
        return self._fold(self.crun_lo, self.crun_hi, idx, lo, hi)
