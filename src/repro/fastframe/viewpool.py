"""Struct-of-arrays per-view state for the vectorized executor core.

The seed executor kept one ``_ViewState`` object per aggregate view and
drove both ingest and bound recomputation with Python loops over every
view — interpreter overhead that dominates wall time for high-cardinality
GROUP BYs.  :class:`ViewPool` stores the same state as parallel numpy
arrays, one row per view, indexed by combined (mixed-radix) group code:

* sample and all-read moments (:class:`~repro.stats.streaming.MomentPool`);
* selectivity counters ``in_view`` / ``covered`` (Lemma 5's m_v and r);
* running-intersection endpoints for the value and COUNT intervals
  (Theorem 4's ``[max_k L_k, min_k R_k]``), plus the last certified
  intervals;
* ``active`` / ``dropped`` / ``exhausted`` flags;
* an opaque *bounder pool* holding every view's error-bounder state in the
  bounder's own struct-of-arrays layout.

Ingest then becomes a handful of ``np.bincount`` passes per scan window and
each OptStop round a fixed number of array expressions, regardless of the
number of views.  Row ``i`` of the pool evolves exactly like the scalar
``_ViewState`` fed the same rows (up to floating-point summation order);
the parity test-suite pins this.

**Incremental rounds.**  The pool tracks two dirty masks so OptStop rounds
touch only rows whose inputs changed since the last round:

* ``dirty`` — rows whose selectivity counters / moments changed since the
  last bound recomputation (set by ingest via :meth:`mark_dirty`, cleared
  by the executor when it recomputes a row's bounds).  Skipping a clean
  row is *bit-identical* to recomputing it: with unchanged counters, the
  interval at the later round's smaller decayed δ is wider, and folding a
  wider interval into the running intersection is a no-op.
* ``snap_dirty`` — rows whose snapshot columns (certified interval,
  estimate, sample count) are stale; :meth:`snapshot_columns` refreshes
  only those rows of its cached arrays.

Callers that write interval or counter arrays directly (outside the
executor's ingest/recompute paths) must call :meth:`mark_dirty` for the
touched rows, or the cached snapshot goes stale.

**Parallel ingest.**  Folding one window into the pool is split into a
pure *partition* step (:func:`build_ingest_delta` — sort the in-view
elements by group code, map codes to pool rows, pre-aggregate per-view
bincount statistics) and a stateful *merge* step
(:meth:`ViewPool.apply_ingest`).  The partition step touches no pool
state, so a worker process can run it over shared-memory window buffers
and ship the resulting :class:`IngestDelta` back; the main process then
merges deltas in deterministic window order.  For delta-capable bounders
(``ErrorBounder.supports_delta``) the worker additionally runs the
bounder's own pure ``partition_delta`` over the sorted stream and ships
the O(views) :class:`~repro.bounders.base.BounderDelta` *instead of* the
per-row ``view_idx``/``values`` arrays; :meth:`ViewPool.apply_ingest`
folds it with ``merge_delta``.  Because the partition is a pure function
of its input arrays and the merge consumes exactly the arrays the serial
path would have computed in place, parallel ingest is bit-identical to
serial ingest — the determinism suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.stats.streaming import MomentPool
from repro.stopping.conditions import SnapshotColumns

__all__ = [
    "ViewPool",
    "IngestDelta",
    "WindowSlice",
    "build_ingest_delta",
    "slice_elements",
    "partition_slice",
]


def lookup_codes(codes: np.ndarray, combined: np.ndarray) -> np.ndarray:
    """Pool row index per combined code over a sorted domain (checked).

    Raises :class:`KeyError` when any code is outside the domain — an
    unguarded ``searchsorted`` would silently return a neighboring view's
    row and corrupt its counters (e.g. when an insert widens a dictionary
    after the pool was built).  Module-level so worker processes can map
    codes without holding a :class:`ViewPool`.
    """
    combined = np.asarray(combined, dtype=np.int64)
    if codes.size == 0:
        if combined.size:
            raise KeyError(
                f"combined group codes {np.unique(combined)[:8].tolist()} "
                "looked up in an empty pool domain"
            )
        return np.zeros(0, dtype=np.int64)
    idx = np.searchsorted(codes, combined)
    clipped = np.minimum(idx, codes.size - 1)
    bad = (idx >= codes.size) | (codes[clipped] != combined)
    if bad.any():
        missing = np.unique(combined[bad])[:8]
        raise KeyError(
            f"combined group codes {missing.tolist()} are not in the "
            "pool domain (stale pool after inserts?)"
        )
    return idx


@dataclass
class IngestDelta:
    """One (query, window) slice, partitioned and ready to merge.

    The unit of work a parallel ingest worker returns: everything
    :meth:`ViewPool.apply_ingest` needs to fold the window into the pool
    without touching the window's row data again.

    Attributes
    ----------
    n_read:
        Rows of the window this run read (its block mask's elements).
    n_in_view:
        Rows that additionally pass the run's predicate.
    view_idx:
        Pool row per in-view element, sorted ascending with ties in
        stream order (the order the bounder pools require); ``None``
        when ``n_in_view == 0``.
    values:
        Aggregated-column values aligned with ``view_idx``; ``None`` for
        COUNT queries.
    counts, means, m2s:
        Optional pre-aggregated per-view batch statistics
        (:meth:`MomentPool.batch_stats` output for value queries, a
        plain bincount for COUNT).  Workers precompute them; the serial
        path leaves them ``None`` and :meth:`ensure_stats` fills them in
        lazily.  Either way the arrays are the output of the same pure
        function over the same inputs, so the merge is bit-identical.
    bounder_delta:
        Optional pre-partitioned bounder-state delta
        (:meth:`~repro.bounders.base.ErrorBounder.partition_delta`
        output).  A worker sets it — and drops :attr:`view_idx` /
        :attr:`values` from the payload — when the run's bounder is
        delta-capable and every view is settling; the serial path leaves
        it ``None`` and :meth:`ViewPool.apply_ingest` runs the identical
        partition in place.
    """

    n_read: int
    n_in_view: int
    view_idx: np.ndarray | None = None
    values: np.ndarray | None = None
    counts: np.ndarray | None = None
    means: np.ndarray | None = None
    m2s: np.ndarray | None = None
    bounder_delta: Any = None

    @property
    def needs_values(self) -> bool:
        """True for value (non-COUNT) deltas, however they were shipped.

        A worker-native delta omits :attr:`values`; its per-view means
        (value queries always pre-aggregate stats) or bounder delta still
        mark it as a value ingest.
        """
        return (
            self.values is not None
            or self.means is not None
            or self.bounder_delta is not None
        )

    def payload_nbytes(self) -> int:
        """Bytes of array payload this delta carries across IPC."""
        total = 0
        for array in (self.view_idx, self.values, self.counts, self.means, self.m2s):
            if array is not None:
                total += array.nbytes
        if self.bounder_delta is not None:
            total += self.bounder_delta.nbytes
        return total

    def ensure_stats(self, size: int, needs_values: bool) -> None:
        """Fill :attr:`counts` (and value moments) if a worker didn't."""
        if self.counts is not None or self.n_in_view == 0:
            return
        if self.view_idx is None:
            raise ValueError(
                "IngestDelta shipped without per-view statistics or row "
                "arrays; a native delta must precompute counts"
            )
        if needs_values:
            self.counts, self.means, self.m2s = MomentPool.batch_stats(
                self.view_idx, self.values, size
            )
        else:
            self.counts = np.bincount(self.view_idx, minlength=size)


def build_ingest_delta(
    n_read: int,
    n_in_view: int,
    view_values: np.ndarray | None,
    view_combined: np.ndarray | None,
    codes: np.ndarray,
    *,
    needs_values: bool,
    with_stats: bool = False,
) -> IngestDelta:
    """Partition one window slice into an :class:`IngestDelta`.

    ``view_values`` / ``view_combined`` are the run's predicate-passing
    elements of the window in scan order (``view_values`` is ``None`` for
    COUNT queries; ``view_combined`` is ``None`` for single-view pools,
    which need no partitioning).  ``codes`` is the pool's sorted combined
    domain.  Pure function: safe to run in a worker process over
    shared-memory buffers.  ``with_stats`` additionally pre-aggregates the
    per-view bincount statistics (workers pay this O(rows) pass so the
    main process's merge is O(views)).
    """
    if n_in_view == 0:
        return IngestDelta(n_read=n_read, n_in_view=0)
    if view_combined is None or codes.size <= 1:
        # Single view: no partitioning needed, keep stream order.
        view_idx = np.zeros(n_in_view, dtype=np.int64)
        ordered_values = view_values
    else:
        # Stable sort by group code: stream order within each view is
        # preserved, as the order-sensitive bounder pools require.
        sort_order = np.argsort(view_combined, kind="stable")
        view_idx = lookup_codes(codes, view_combined[sort_order])
        ordered_values = view_values[sort_order] if needs_values else None
    delta = IngestDelta(
        n_read=n_read,
        n_in_view=n_in_view,
        view_idx=view_idx,
        values=ordered_values,
    )
    if with_stats:
        delta.ensure_stats(max(codes.size, 1), needs_values)
    return delta


@dataclass
class WindowSlice:
    """Element accounting of one run's slice of one window.

    Attributes
    ----------
    n_read:
        Elements the run's block mask selects (all of them when ``sel``
        was ``None``, i.e. the mask equals the window's union).
    n_in_view:
        Selected elements that additionally pass the run's predicate.
    pick:
        The combined boolean element mask (``None`` when nothing was
        read — the predicate mask is then never evaluated).
    """

    n_read: int
    n_in_view: int
    pick: np.ndarray | None


def slice_elements(n_rows: int, sel, predicate_of) -> WindowSlice:
    """Count one run's window slice (pure; the first half of ingest).

    ``sel`` is the run's element selector over the window's fetched rows
    (``None`` when the run's mask is the union); ``predicate_of`` lazily
    supplies the predicate mask — evaluated only when the run read
    anything, exactly the serial lazy condition.  The ONE copy of this
    arithmetic: the serial consume path, the parallel driver, and the
    worker processes all call it, so the engines cannot drift.
    """
    n_read = int(n_rows) if sel is None else int(np.count_nonzero(sel))
    pick = None
    n_in_view = 0
    if n_read:
        pred = predicate_of()
        pick = pred if sel is None else (sel & pred)
        n_in_view = int(np.count_nonzero(pick))
    return WindowSlice(n_read=n_read, n_in_view=n_in_view, pick=pick)


def partition_slice(
    window_slice: WindowSlice,
    codes: np.ndarray,
    values_of=None,
    combined_of=None,
    *,
    with_stats: bool = False,
) -> IngestDelta:
    """Partition a counted slice into an :class:`IngestDelta` (pure).

    ``values_of`` / ``combined_of`` lazily gather the slice's value and
    combined-code arrays from a pick mask (``None`` for COUNT queries /
    single-view pools); they are only invoked when the slice has in-view
    elements — again the serial lazy condition, shared by every engine.
    """
    view_values = None
    view_combined = None
    if window_slice.n_in_view:
        if values_of is not None:
            view_values = values_of(window_slice.pick)
        if combined_of is not None:
            view_combined = combined_of(window_slice.pick)
    return build_ingest_delta(
        window_slice.n_read,
        window_slice.n_in_view,
        view_values,
        view_combined,
        codes,
        needs_values=values_of is not None,
        with_stats=with_stats,
    )


@dataclass
class ViewPool:
    """All per-view executor state, as parallel arrays (one row per view)."""

    codes: np.ndarray          #: sorted combined group codes (int64)
    key_codes: list            #: per-view tuples of per-column codes
    bounder_pool: Any          #: bounder-owned struct-of-arrays state bank
    sample: MomentPool         #: moments of the sampled (settled) values
    all_read: MomentPool       #: moments of every value read for the view
    in_view: np.ndarray        #: settled rows belonging to the view (int64)
    covered: np.ndarray        #: settled rows, Lemma 5's r (int64)
    run_lo: np.ndarray         #: value-interval running intersection (lo)
    run_hi: np.ndarray
    crun_lo: np.ndarray        #: COUNT-interval running intersection (lo)
    crun_hi: np.ndarray
    iv_lo: np.ndarray          #: last certified value interval
    iv_hi: np.ndarray
    civ_lo: np.ndarray         #: last certified COUNT interval
    civ_hi: np.ndarray
    active: np.ndarray         #: bool — group currently prioritized
    dropped: np.ndarray        #: bool — certified empty, out of the result
    exhausted: np.ndarray      #: bool — every row settled, aggregate exact
    dirty: np.ndarray          #: bool — counters changed since last recompute
    snap_dirty: np.ndarray     #: bool — snapshot columns stale for the row
    # Cached snapshot columns (one entry per pool row), refreshed
    # incrementally by snapshot_columns() for snap_dirty rows only.
    _snap_lo: np.ndarray | None = field(default=None, repr=False)
    _snap_hi: np.ndarray | None = field(default=None, repr=False)
    _snap_estimate: np.ndarray | None = field(default=None, repr=False)
    _snap_bounds: tuple | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls, domain: np.ndarray, key_codes: list, bounder: ErrorBounder
    ) -> "ViewPool":
        """Pool over a (sorted) combined-code domain with fresh state."""
        size = int(domain.size)
        return cls(
            codes=np.asarray(domain, dtype=np.int64),
            key_codes=key_codes,
            bounder_pool=bounder.init_pool(size),
            sample=MomentPool(size),
            all_read=MomentPool(size),
            in_view=np.zeros(size, dtype=np.int64),
            covered=np.zeros(size, dtype=np.int64),
            run_lo=np.full(size, -np.inf),
            run_hi=np.full(size, np.inf),
            crun_lo=np.full(size, -np.inf),
            crun_hi=np.full(size, np.inf),
            iv_lo=np.full(size, -np.inf),
            iv_hi=np.full(size, np.inf),
            civ_lo=np.zeros(size),
            civ_hi=np.full(size, np.inf),
            active=np.ones(size, dtype=bool),
            dropped=np.zeros(size, dtype=bool),
            exhausted=np.zeros(size, dtype=bool),
            dirty=np.ones(size, dtype=bool),
            snap_dirty=np.ones(size, dtype=bool),
        )

    @property
    def size(self) -> int:
        return self.codes.size

    def lookup(self, combined: np.ndarray) -> np.ndarray:
        """Pool row index per combined code (checked).

        Raises :class:`KeyError` when any code is outside the pool's
        domain — an unguarded ``searchsorted`` would silently return a
        neighboring view's row and corrupt its counters (e.g. when an
        insert widens a dictionary after the pool was built).
        """
        return lookup_codes(self.codes, combined)

    def mark_dirty(self, mask: np.ndarray) -> None:
        """Flag rows whose counters changed since the last OptStop round."""
        self.dirty |= mask
        self.snap_dirty |= mask

    def settling_mask(self, freezes_groups: bool) -> np.ndarray:
        """Views whose rows settle this window (Lemma 5's accounting).

        The ONE copy of the eligibility arithmetic: :meth:`apply_ingest`
        folds with it, and the parallel driver consults
        ``settling_mask(...).all()`` to decide whether a worker may ship a
        native bounder delta (computed over the *unmasked* stream, so only
        valid when every view settles).
        """
        eligible = ~self.dropped & ~self.exhausted
        if freezes_groups:
            return eligible & self.active
        return eligible

    def _ingest_bounder(
        self, bounder: ErrorBounder, view_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Fold one sorted stream into the bounder pool, in place.

        Delta-capable bounders run the identical partition→merge pair the
        parallel workers use (so serial and parallel execute the same
        float program); third-party bounders keep the mutate-in-place
        ``update_pool`` loop fall-back.
        """
        if bounder.supports_delta:
            bounder.merge_delta(
                self.bounder_pool,
                bounder.partition_delta(
                    view_idx,
                    values,
                    self.size,
                    bounder.delta_context(self.bounder_pool),
                ),
            )
        else:
            bounder.update_pool(self.bounder_pool, view_idx, values)

    def apply_ingest(
        self,
        bounder: ErrorBounder,
        delta: IngestDelta,
        window_rows: int,
        freezes_groups: bool,
    ) -> None:
        """Merge one window's :class:`IngestDelta` into the pool.

        The stateful half of ingest: bincount merges into the moment
        pools, the bounder-pool delta merge (or ``update_pool`` replay for
        non-delta bounders), selectivity counters, and the dirty masks.
        The delta may come from the serial path (built in place by the
        consuming run) or from a parallel worker — the arrays are
        identical either way, so so is every resulting float.
        """
        settling = self.settling_mask(freezes_groups)
        needs_values = delta.needs_values
        if delta.n_in_view:
            view_idx = delta.view_idx
            # `settling ⊆ eligible`, so when every view settles (the common
            # case: nothing frozen or dropped) the O(rows) element masks can
            # be skipped entirely — decided by O(views) flag tests.
            everything = bool(settling.all())
            if everything:
                delta.ensure_stats(self.size, needs_values)
                if needs_values:
                    # The all-read and sampled moments receive the same
                    # batch — per-view statistics computed once (possibly
                    # by a worker), merged twice.
                    stats = (delta.counts, delta.means, delta.m2s)
                    self.all_read.merge_arrays(*stats)
                    self.sample.merge_arrays(*stats)
                    if delta.bounder_delta is not None:
                        bounder.merge_delta(self.bounder_pool, delta.bounder_delta)
                    else:
                        self._ingest_bounder(bounder, view_idx, delta.values)
                else:
                    self.all_read.count += delta.counts
                self.in_view += delta.counts
            else:
                if (
                    delta.bounder_delta is not None
                    or delta.view_idx is None
                    or (needs_values and delta.values is None)
                ):
                    # A native delta is partitioned over the whole stream;
                    # folding it while some views are frozen/dropped would
                    # credit them rows they must not settle.  The driver
                    # gates on settling_mask().all(), so this is protocol
                    # misuse, not a recoverable state.
                    raise ValueError(
                        "native bounder delta received while not every view "
                        "is settling; workers must ship row arrays here"
                    )
                values = delta.values
                eligible = ~self.dropped & ~self.exhausted
                elements_eligible = eligible[view_idx]
                elements_settling = settling[view_idx]
                identical = np.array_equal(elements_eligible, elements_settling)
                if needs_values:
                    if identical:
                        idx = view_idx[elements_settling]
                        vals = values[elements_settling]
                        stats = MomentPool.batch_stats(idx, vals, self.size)
                        self.all_read.merge_arrays(*stats)
                        self.sample.merge_arrays(*stats)
                        self._ingest_bounder(bounder, idx, vals)
                    else:
                        self.all_read.update_indexed(
                            view_idx[elements_eligible], values[elements_eligible]
                        )
                        self.sample.update_indexed(
                            view_idx[elements_settling], values[elements_settling]
                        )
                        self._ingest_bounder(
                            bounder,
                            view_idx[elements_settling],
                            values[elements_settling],
                        )
                else:
                    self.all_read.count += np.bincount(
                        view_idx[elements_eligible], minlength=self.size
                    )
                self.in_view += np.bincount(
                    view_idx[elements_settling], minlength=self.size
                )
        # Lemma 5's covered-row accounting: the whole window settles for
        # every non-frozen surviving view (rows read, plus rows of skipped
        # blocks the bitmap index certifies hold no tuple of the view).
        if window_rows:
            self.covered[settling] += window_rows
            # Settling rows are exactly those whose round inputs (covered,
            # in_view, sample moments, bounder state) may have changed.
            self.mark_dirty(settling)

    def snapshot_columns(self, a: float, b: float) -> SnapshotColumns:
        """Struct-of-arrays snapshot of the non-dropped views.

        Endpoints of a certified interval that are still non-finite are
        clamped to the value range *per endpoint* — a half-finite interval
        keeps its certified finite bound and only the trivial side falls
        back to ``a`` / ``b``.  Estimates fall back to the interval
        midpoint until the view has a sample.  Snapshot columns are cached
        per pool row and refreshed incrementally: only ``snap_dirty`` rows
        are recomputed per call.  The returned columns carry a ``rows``
        attribute mapping each snapshot row back to its pool row, so
        callers (stopping-condition refresh, progressive round reporting)
        can write activity flags or decode group keys.
        """
        if self._snap_lo is None or self._snap_bounds != (a, b):
            self._snap_lo = np.empty(self.size)
            self._snap_hi = np.empty(self.size)
            self._snap_estimate = np.empty(self.size)
            self._snap_bounds = (a, b)
            self.snap_dirty[:] = True
        stale = np.flatnonzero(self.snap_dirty)
        if stale.size:
            lo = self.iv_lo[stale]
            hi = self.iv_hi[stale]
            lo = np.where(np.isfinite(lo), lo, a)
            hi = np.where(np.isfinite(hi), hi, b)
            samples = self.sample.count[stale]
            self._snap_lo[stale] = lo
            self._snap_hi[stale] = hi
            self._snap_estimate[stale] = np.where(
                samples > 0, self.sample.mean[stale], 0.5 * (lo + hi)
            )
            self.snap_dirty[:] = False
        live = np.flatnonzero(~self.dropped)
        columns = SnapshotColumns(
            keys=self.codes[live],
            lo=self._snap_lo[live],
            hi=self._snap_hi[live],
            estimate=self._snap_estimate[live],
            samples=self.sample.count[live],
            exhausted=self.exhausted[live],
        )
        columns.rows = live  # pool row per snapshot row
        return columns

    @staticmethod
    def _fold(
        run_lo: np.ndarray,
        run_hi: np.ndarray,
        idx: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array form of ``RunningIntersection.fold`` (with midpoint collapse)."""
        folded_lo = np.maximum(run_lo[idx], lo)
        folded_hi = np.minimum(run_hi[idx], hi)
        inverted = folded_lo > folded_hi
        if inverted.any():
            mid = 0.5 * (folded_lo[inverted] + folded_hi[inverted])
            folded_lo[inverted] = mid
            folded_hi[inverted] = mid
        run_lo[idx] = folded_lo
        run_hi[idx] = folded_hi
        return folded_lo, folded_hi

    def fold_value(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the value running intersections of rows ``idx``."""
        return self._fold(self.run_lo, self.run_hi, idx, lo, hi)

    def fold_count(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the COUNT running intersections of rows ``idx``."""
        return self._fold(self.crun_lo, self.crun_hi, idx, lo, hi)
