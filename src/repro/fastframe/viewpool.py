"""Struct-of-arrays per-view state for the vectorized executor core.

The seed executor kept one ``_ViewState`` object per aggregate view and
drove both ingest and bound recomputation with Python loops over every
view — interpreter overhead that dominates wall time for high-cardinality
GROUP BYs.  :class:`ViewPool` stores the same state as parallel numpy
arrays, one row per view, indexed by combined (mixed-radix) group code:

* sample and all-read moments (:class:`~repro.stats.streaming.MomentPool`);
* selectivity counters ``in_view`` / ``covered`` (Lemma 5's m_v and r);
* running-intersection endpoints for the value and COUNT intervals
  (Theorem 4's ``[max_k L_k, min_k R_k]``), plus the last certified
  intervals;
* ``active`` / ``dropped`` / ``exhausted`` flags;
* an opaque *bounder pool* holding every view's error-bounder state in the
  bounder's own struct-of-arrays layout.

Ingest then becomes a handful of ``np.bincount`` passes per scan window and
each OptStop round a fixed number of array expressions, regardless of the
number of views.  Row ``i`` of the pool evolves exactly like the scalar
``_ViewState`` fed the same rows (up to floating-point summation order);
the parity test-suite pins this.

**Incremental rounds.**  The pool tracks two dirty masks so OptStop rounds
touch only rows whose inputs changed since the last round:

* ``dirty`` — rows whose selectivity counters / moments changed since the
  last bound recomputation (set by ingest via :meth:`mark_dirty`, cleared
  by the executor when it recomputes a row's bounds).  Skipping a clean
  row is *bit-identical* to recomputing it: with unchanged counters, the
  interval at the later round's smaller decayed δ is wider, and folding a
  wider interval into the running intersection is a no-op.
* ``snap_dirty`` — rows whose snapshot columns (certified interval,
  estimate, sample count) are stale; :meth:`snapshot_columns` refreshes
  only those rows of its cached arrays.

Callers that write interval or counter arrays directly (outside the
executor's ingest/recompute paths) must call :meth:`mark_dirty` for the
touched rows, or the cached snapshot goes stale.

**Parallel ingest.**  Folding one window into the pool is split into a
pure *partition* step (the fused kernel in
:mod:`repro.fastframe.kernels` — slice the window, gather the in-view
elements, stable-sort by group code, map codes to pool rows,
pre-aggregate per-view bincount statistics) and a stateful *merge* step
(:meth:`ViewPool.apply_ingest`).  The partition step touches no pool
state, so a worker process can run it over shared-memory window buffers
and ship the resulting :class:`IngestDelta` back; the main process then
merges deltas in deterministic window order.  For delta-capable bounders
(``ErrorBounder.supports_delta``) the worker additionally runs the
bounder's own pure ``partition_delta`` over the sorted stream and ships
the O(views) :class:`~repro.bounders.base.BounderDelta` *instead of* the
per-row ``view_idx``/``values`` arrays; :meth:`ViewPool.apply_ingest`
folds it with ``merge_delta``.  Because the partition is a pure function
of its input arrays and the merge consumes exactly the arrays the serial
path would have computed in place, parallel ingest is bit-identical to
serial ingest — the determinism suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.fastframe.kernels import (
    IngestDelta,
    WindowSlice,
    build_ingest_delta,
    lookup_codes,
    partition_ingest,
    partition_slice,
    slice_elements,
)
from repro.stats.streaming import MomentPool
from repro.stopping.conditions import SnapshotColumns

# The partition primitives live in :mod:`repro.fastframe.kernels` (the
# ONE copy of the slicing/gather arithmetic); they are re-exported here
# because this module is their historical home and the delta protocol's
# documentation anchor.
__all__ = [
    "ViewPool",
    "IngestDelta",
    "WindowSlice",
    "build_ingest_delta",
    "slice_elements",
    "partition_slice",
    "partition_ingest",
    "lookup_codes",
]


@dataclass
class ViewPool:
    """All per-view executor state, as parallel arrays (one row per view)."""

    codes: np.ndarray          #: sorted combined group codes (int64)
    key_codes: list            #: per-view tuples of per-column codes
    bounder_pool: Any          #: bounder-owned struct-of-arrays state bank
    sample: MomentPool         #: moments of the sampled (settled) values
    all_read: MomentPool       #: moments of every value read for the view
    in_view: np.ndarray        #: settled rows belonging to the view (int64)
    covered: np.ndarray        #: settled rows, Lemma 5's r (int64)
    run_lo: np.ndarray         #: value-interval running intersection (lo)
    run_hi: np.ndarray
    crun_lo: np.ndarray        #: COUNT-interval running intersection (lo)
    crun_hi: np.ndarray
    iv_lo: np.ndarray          #: last certified value interval
    iv_hi: np.ndarray
    civ_lo: np.ndarray         #: last certified COUNT interval
    civ_hi: np.ndarray
    active: np.ndarray         #: bool — group currently prioritized
    dropped: np.ndarray        #: bool — certified empty, out of the result
    exhausted: np.ndarray      #: bool — every row settled, aggregate exact
    dirty: np.ndarray          #: bool — counters changed since last recompute
    snap_dirty: np.ndarray     #: bool — snapshot columns stale for the row
    #: Optional per-row point estimator ``(pool_rows) -> float64 array``
    #: consulted by :meth:`snapshot_columns` for rows holding samples.
    #: ``None`` falls back to the sampled mean — correct for the mean
    #: family; quantile queries install their bounder's batch quantile.
    estimator: Any = field(default=None, repr=False)
    # Cached snapshot columns (one entry per pool row), refreshed
    # incrementally by snapshot_columns() for snap_dirty rows only.
    _snap_lo: np.ndarray | None = field(default=None, repr=False)
    _snap_hi: np.ndarray | None = field(default=None, repr=False)
    _snap_estimate: np.ndarray | None = field(default=None, repr=False)
    _snap_bounds: tuple | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls, domain: np.ndarray, key_codes: list, bounder: ErrorBounder
    ) -> "ViewPool":
        """Pool over a (sorted) combined-code domain with fresh state."""
        size = int(domain.size)
        return cls(
            codes=np.asarray(domain, dtype=np.int64),
            key_codes=key_codes,
            bounder_pool=bounder.init_pool(size),
            sample=MomentPool(size),
            all_read=MomentPool(size),
            in_view=np.zeros(size, dtype=np.int64),
            covered=np.zeros(size, dtype=np.int64),
            run_lo=np.full(size, -np.inf),
            run_hi=np.full(size, np.inf),
            crun_lo=np.full(size, -np.inf),
            crun_hi=np.full(size, np.inf),
            iv_lo=np.full(size, -np.inf),
            iv_hi=np.full(size, np.inf),
            civ_lo=np.zeros(size),
            civ_hi=np.full(size, np.inf),
            active=np.ones(size, dtype=bool),
            dropped=np.zeros(size, dtype=bool),
            exhausted=np.zeros(size, dtype=bool),
            dirty=np.ones(size, dtype=bool),
            snap_dirty=np.ones(size, dtype=bool),
        )

    @property
    def size(self) -> int:
        return self.codes.size

    def lookup(self, combined: np.ndarray) -> np.ndarray:
        """Pool row index per combined code (checked).

        Raises :class:`KeyError` when any code is outside the pool's
        domain — an unguarded ``searchsorted`` would silently return a
        neighboring view's row and corrupt its counters (e.g. when an
        insert widens a dictionary after the pool was built).
        """
        return lookup_codes(self.codes, combined)

    def mark_dirty(self, mask: np.ndarray) -> None:
        """Flag rows whose counters changed since the last OptStop round."""
        self.dirty |= mask
        self.snap_dirty |= mask

    def settling_mask(self, freezes_groups: bool) -> np.ndarray:
        """Views whose rows settle this window (Lemma 5's accounting).

        The ONE copy of the eligibility arithmetic: :meth:`apply_ingest`
        folds with it, and the parallel driver consults
        ``settling_mask(...).all()`` to decide whether a worker may ship a
        native bounder delta (computed over the *unmasked* stream, so only
        valid when every view settles).
        """
        eligible = ~self.dropped & ~self.exhausted
        if freezes_groups:
            return eligible & self.active
        return eligible

    def _ingest_bounder(
        self, bounder: ErrorBounder, view_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Fold one sorted stream into the bounder pool, in place.

        Delta-capable bounders run the identical partition→merge pair the
        parallel workers use (so serial and parallel execute the same
        float program); third-party bounders keep the mutate-in-place
        ``update_pool`` loop fall-back.
        """
        if bounder.supports_delta:
            bounder.merge_delta(
                self.bounder_pool,
                bounder.partition_delta(
                    view_idx,
                    values,
                    self.size,
                    bounder.delta_context(self.bounder_pool),
                ),
            )
        else:
            bounder.update_pool(self.bounder_pool, view_idx, values)

    def apply_ingest(
        self,
        bounder: ErrorBounder,
        delta: IngestDelta,
        window_rows: int,
        freezes_groups: bool,
    ) -> None:
        """Merge one window's :class:`IngestDelta` into the pool.

        The stateful half of ingest: bincount merges into the moment
        pools, the bounder-pool delta merge (or ``update_pool`` replay for
        non-delta bounders), selectivity counters, and the dirty masks.
        The delta may come from the serial path (built in place by the
        consuming run) or from a parallel worker — the arrays are
        identical either way, so so is every resulting float.
        """
        settling = self.settling_mask(freezes_groups)
        needs_values = delta.needs_values
        if delta.n_in_view:
            view_idx = delta.view_idx
            # `settling ⊆ eligible`, so when every view settles (the common
            # case: nothing frozen or dropped) the O(rows) element masks can
            # be skipped entirely — decided by O(views) flag tests.
            everything = bool(settling.all())
            if everything:
                delta.ensure_stats(self.size, needs_values)
                if needs_values:
                    # The all-read and sampled moments receive the same
                    # batch — per-view statistics computed once (possibly
                    # by a worker), merged twice.
                    stats = (delta.counts, delta.means, delta.m2s)
                    self.all_read.merge_arrays(*stats)
                    self.sample.merge_arrays(*stats)
                    if delta.bounder_delta is not None:
                        bounder.merge_delta(self.bounder_pool, delta.bounder_delta)
                    else:
                        self._ingest_bounder(bounder, view_idx, delta.values)
                else:
                    self.all_read.count += delta.counts
                self.in_view += delta.counts
            else:
                if (
                    delta.bounder_delta is not None
                    or delta.view_idx is None
                    or (needs_values and delta.values is None)
                ):
                    # A native delta is partitioned over the whole stream;
                    # folding it while some views are frozen/dropped would
                    # credit them rows they must not settle.  The driver
                    # gates on settling_mask().all(), so this is protocol
                    # misuse, not a recoverable state.
                    raise ValueError(
                        "native bounder delta received while not every view "
                        "is settling; workers must ship row arrays here"
                    )
                values = delta.values
                eligible = ~self.dropped & ~self.exhausted
                elements_eligible = eligible[view_idx]
                elements_settling = settling[view_idx]
                identical = np.array_equal(elements_eligible, elements_settling)
                if needs_values:
                    if identical:
                        idx = view_idx[elements_settling]
                        vals = values[elements_settling]
                        stats = MomentPool.batch_stats(idx, vals, self.size)
                        self.all_read.merge_arrays(*stats)
                        self.sample.merge_arrays(*stats)
                        self._ingest_bounder(bounder, idx, vals)
                    else:
                        self.all_read.update_indexed(
                            view_idx[elements_eligible], values[elements_eligible]
                        )
                        self.sample.update_indexed(
                            view_idx[elements_settling], values[elements_settling]
                        )
                        self._ingest_bounder(
                            bounder,
                            view_idx[elements_settling],
                            values[elements_settling],
                        )
                else:
                    self.all_read.count += np.bincount(
                        view_idx[elements_eligible], minlength=self.size
                    )
                self.in_view += np.bincount(
                    view_idx[elements_settling], minlength=self.size
                )
        # Lemma 5's covered-row accounting: the whole window settles for
        # every non-frozen surviving view (rows read, plus rows of skipped
        # blocks the bitmap index certifies hold no tuple of the view).
        if window_rows:
            self.covered[settling] += window_rows
            # Settling rows are exactly those whose round inputs (covered,
            # in_view, sample moments, bounder state) may have changed.
            self.mark_dirty(settling)

    def snapshot_columns(self, a: float, b: float) -> SnapshotColumns:
        """Struct-of-arrays snapshot of the non-dropped views.

        Endpoints of a certified interval that are still non-finite are
        clamped to the value range *per endpoint* — a half-finite interval
        keeps its certified finite bound and only the trivial side falls
        back to ``a`` / ``b``.  Estimates fall back to the interval
        midpoint until the view has a sample.  Snapshot columns are cached
        per pool row and refreshed incrementally: only ``snap_dirty`` rows
        are recomputed per call.  The returned columns carry a ``rows``
        attribute mapping each snapshot row back to its pool row, so
        callers (stopping-condition refresh, progressive round reporting)
        can write activity flags or decode group keys.
        """
        if self._snap_lo is None or self._snap_bounds != (a, b):
            self._snap_lo = np.empty(self.size)
            self._snap_hi = np.empty(self.size)
            self._snap_estimate = np.empty(self.size)
            self._snap_bounds = (a, b)
            self.snap_dirty[:] = True
        stale = np.flatnonzero(self.snap_dirty)
        if stale.size:
            lo = self.iv_lo[stale]
            hi = self.iv_hi[stale]
            lo = np.where(np.isfinite(lo), lo, a)
            hi = np.where(np.isfinite(hi), hi, b)
            samples = self.sample.count[stale]
            self._snap_lo[stale] = lo
            self._snap_hi[stale] = hi
            point = (
                self.estimator(stale)
                if self.estimator is not None
                else self.sample.mean[stale]
            )
            self._snap_estimate[stale] = np.where(
                samples > 0, point, 0.5 * (lo + hi)
            )
            self.snap_dirty[:] = False
        live = np.flatnonzero(~self.dropped)
        columns = SnapshotColumns(
            keys=self.codes[live],
            lo=self._snap_lo[live],
            hi=self._snap_hi[live],
            estimate=self._snap_estimate[live],
            samples=self.sample.count[live],
            exhausted=self.exhausted[live],
        )
        columns.rows = live  # pool row per snapshot row
        return columns

    @staticmethod
    def _fold(
        run_lo: np.ndarray,
        run_hi: np.ndarray,
        idx: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array form of ``RunningIntersection.fold`` (with midpoint collapse)."""
        folded_lo = np.maximum(run_lo[idx], lo)
        folded_hi = np.minimum(run_hi[idx], hi)
        inverted = folded_lo > folded_hi
        if inverted.any():
            mid = 0.5 * (folded_lo[inverted] + folded_hi[inverted])
            folded_lo[inverted] = mid
            folded_hi[inverted] = mid
        run_lo[idx] = folded_lo
        run_hi[idx] = folded_hi
        return folded_lo, folded_hi

    def fold_value(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the value running intersections of rows ``idx``."""
        return self._fold(self.run_lo, self.run_hi, idx, lo, hi)

    def fold_count(
        self, idx: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Intersect the COUNT running intersections of rows ``idx``."""
        return self._fold(self.crun_lo, self.crun_hi, idx, lo, hi)
