"""FastFrame: the sampling-optimized in-memory column store.

Covers the storage/executor substrates S11-S18 plus the COUNT methods
(S27), the related-work baselines (outlier index S28, priority sampling
S29, stratified samples S36), snowflake join views (S31), insertion
maintenance (S32), multi-query sessions (S34), and the approximate-vs-exact
planner (S35).  See DESIGN.md for the full inventory.
"""

from repro.fastframe.bitmap import LOOKAHEAD_BATCH_BLOCKS, BlockBitmapIndex
from repro.fastframe.catalog import Catalog, ColumnKind, RangeBounds
from repro.fastframe.count import (
    SelectivityState,
    count_interval,
    count_interval_batch,
    selectivity_interval,
    sum_interval,
    sum_interval_batch,
    upper_bound_population,
    upper_bound_population_batch,
)
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.executor import (
    AUTO_POOL_THRESHOLD,
    COUNT_METHODS,
    DEFAULT_ROUND_ROWS,
    ENGINES,
    ApproximateExecutor,
    QueryRun,
    run_shared_scan,
)
from repro.fastframe.viewpool import ViewPool
from repro.fastframe.window import WindowFrame
from repro.fastframe.hypergeometric import (
    hypergeometric_count_interval,
    hypergeometric_count_interval_batch,
    hypergeometric_upper_bound_population,
    hypergeometric_upper_bound_population_batch,
)
from repro.fastframe.outlier_index import (
    OutlierAvgResult,
    OutlierIndexedStore,
    compose_outlier_avg,
)
from repro.fastframe.planner import PlanEstimate, QueryPlanner
from repro.fastframe.predicate import And, Compare, Eq, In, Not, Or, Predicate, TruePredicate
from repro.fastframe.priority import PrioritySampleIndex
from repro.fastframe.query import (
    AggregateFunction,
    ExecutionMetrics,
    GroupResult,
    Query,
    QueryResult,
    RecoveryCounters,
    StorageCounters,
)
from repro.fastframe.scan import (
    EVALUATED_STRATEGIES,
    ActivePeekStrategy,
    ActiveSyncStrategy,
    SamplingStrategy,
    ScanCursor,
    ScanStrategy,
    get_strategy,
)
from repro.fastframe.scramble import DEFAULT_BLOCK_SIZE, Scramble
from repro.fastframe.session import (
    LEDGER_POLICIES,
    DeltaLedger,
    QueryLedgerEntry,
    Session,
)
from repro.fastframe.snowflake import Dimension, ForeignKey, denormalize
from repro.fastframe.storage import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_STORE_BLOCK_ROWS,
    BlockCache,
    BlockStoreError,
    ColumnStore,
    InMemoryStore,
    MmapBlockStore,
    attach_block_storage,
    open_block_scramble,
    open_block_store,
    resolve_cache_bytes,
    resolve_storage,
    write_block_store,
)
from repro.fastframe.stratified import (
    StratifiedSampleStore,
    StratumResult,
    UnsupportedQueryError,
)
from repro.fastframe.table import CategoricalColumn, Table

__all__ = [
    "AUTO_POOL_THRESHOLD",
    "AggregateFunction",
    "And",
    "ApproximateExecutor",
    "BlockBitmapIndex",
    "BlockCache",
    "BlockStoreError",
    "COUNT_METHODS",
    "Catalog",
    "CategoricalColumn",
    "ColumnKind",
    "ColumnStore",
    "Compare",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_ROUND_ROWS",
    "DEFAULT_STORE_BLOCK_ROWS",
    "DeltaLedger",
    "ENGINES",
    "Dimension",
    "EVALUATED_STRATEGIES",
    "Eq",
    "ForeignKey",
    "ExactExecutor",
    "ExecutionMetrics",
    "GroupResult",
    "In",
    "InMemoryStore",
    "LEDGER_POLICIES",
    "LOOKAHEAD_BATCH_BLOCKS",
    "MmapBlockStore",
    "Not",
    "Or",
    "OutlierAvgResult",
    "OutlierIndexedStore",
    "PlanEstimate",
    "Predicate",
    "QueryPlanner",
    "PrioritySampleIndex",
    "Query",
    "QueryLedgerEntry",
    "QueryResult",
    "QueryRun",
    "RangeBounds",
    "RecoveryCounters",
    "Session",
    "SamplingStrategy",
    "ScanCursor",
    "ScanStrategy",
    "ActivePeekStrategy",
    "ActiveSyncStrategy",
    "Scramble",
    "SelectivityState",
    "StorageCounters",
    "StratifiedSampleStore",
    "StratumResult",
    "Table",
    "TruePredicate",
    "UnsupportedQueryError",
    "ViewPool",
    "WindowFrame",
    "attach_block_storage",
    "compose_outlier_avg",
    "count_interval",
    "count_interval_batch",
    "denormalize",
    "get_strategy",
    "hypergeometric_count_interval",
    "hypergeometric_count_interval_batch",
    "hypergeometric_upper_bound_population",
    "hypergeometric_upper_bound_population_batch",
    "open_block_scramble",
    "open_block_store",
    "resolve_cache_bytes",
    "resolve_storage",
    "run_shared_scan",
    "selectivity_interval",
    "sum_interval",
    "sum_interval_batch",
    "upper_bound_population",
    "upper_bound_population_batch",
    "write_block_store",
]
