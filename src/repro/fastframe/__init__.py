"""FastFrame: the sampling-optimized in-memory column store.

Covers the storage/executor substrates S11-S18 plus the COUNT methods
(S27), the related-work baselines (outlier index S28, priority sampling
S29, stratified samples S36), snowflake join views (S31), insertion
maintenance (S32), multi-query sessions (S34), and the approximate-vs-exact
planner (S35).  See DESIGN.md for the full inventory.
"""

from repro.fastframe.bitmap import LOOKAHEAD_BATCH_BLOCKS, BlockBitmapIndex
from repro.fastframe.catalog import Catalog, ColumnKind, RangeBounds
from repro.fastframe.count import (
    SelectivityState,
    count_interval,
    selectivity_interval,
    sum_interval,
    upper_bound_population,
)
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.executor import (
    COUNT_METHODS,
    DEFAULT_ROUND_ROWS,
    ENGINES,
    ApproximateExecutor,
)
from repro.fastframe.viewpool import ViewPool
from repro.fastframe.hypergeometric import (
    hypergeometric_count_interval,
    hypergeometric_upper_bound_population,
)
from repro.fastframe.outlier_index import (
    OutlierAvgResult,
    OutlierIndexedStore,
    compose_outlier_avg,
)
from repro.fastframe.planner import PlanEstimate, QueryPlanner
from repro.fastframe.predicate import And, Compare, Eq, In, Not, Or, Predicate, TruePredicate
from repro.fastframe.priority import PrioritySampleIndex
from repro.fastframe.query import (
    AggregateFunction,
    ExecutionMetrics,
    GroupResult,
    Query,
    QueryResult,
)
from repro.fastframe.scan import (
    EVALUATED_STRATEGIES,
    ActivePeekStrategy,
    ActiveSyncStrategy,
    SamplingStrategy,
    ScanStrategy,
    get_strategy,
)
from repro.fastframe.scramble import DEFAULT_BLOCK_SIZE, Scramble
from repro.fastframe.session import QueryLedgerEntry, Session
from repro.fastframe.snowflake import Dimension, ForeignKey, denormalize
from repro.fastframe.stratified import (
    StratifiedSampleStore,
    StratumResult,
    UnsupportedQueryError,
)
from repro.fastframe.table import CategoricalColumn, Table

__all__ = [
    "AggregateFunction",
    "And",
    "ApproximateExecutor",
    "BlockBitmapIndex",
    "COUNT_METHODS",
    "Catalog",
    "CategoricalColumn",
    "ColumnKind",
    "Compare",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_ROUND_ROWS",
    "ENGINES",
    "Dimension",
    "EVALUATED_STRATEGIES",
    "Eq",
    "ForeignKey",
    "ExactExecutor",
    "ExecutionMetrics",
    "GroupResult",
    "In",
    "LOOKAHEAD_BATCH_BLOCKS",
    "Not",
    "Or",
    "OutlierAvgResult",
    "OutlierIndexedStore",
    "PlanEstimate",
    "Predicate",
    "QueryPlanner",
    "PrioritySampleIndex",
    "Query",
    "QueryLedgerEntry",
    "QueryResult",
    "RangeBounds",
    "Session",
    "SamplingStrategy",
    "ScanStrategy",
    "ActivePeekStrategy",
    "ActiveSyncStrategy",
    "Scramble",
    "SelectivityState",
    "StratifiedSampleStore",
    "StratumResult",
    "Table",
    "TruePredicate",
    "UnsupportedQueryError",
    "ViewPool",
    "compose_outlier_avg",
    "count_interval",
    "denormalize",
    "get_strategy",
    "hypergeometric_count_interval",
    "hypergeometric_upper_bound_population",
    "selectivity_interval",
    "sum_interval",
    "upper_bound_population",
]
