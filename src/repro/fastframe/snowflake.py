"""Snowflake-schema join views (the paper's Extensibility claim, §1).

The paper notes its techniques "can be used to facilitate … queries over
views formed from joins in a snowflake schema".  The mechanism is the same
one the scramble already relies on: materialize the joined view offline
(denormalize the fact table by following foreign keys), shuffle it once,
and every filtered/grouped subset of the view is again an aggregate view
that scan-based without-replacement sampling covers with full guarantees.

:func:`denormalize` performs that offline join.  Dimensions may themselves
reference further dimensions (the snowflake part): each
:class:`Dimension`'s own foreign keys are resolved recursively before its
attributes are attached to the fact table.

Join keys may be categorical (airport codes) or continuous (integer
surrogate keys); referential integrity is checked eagerly — a fact row
whose key has no dimension match is a data error, not something to paper
over during sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fastframe.catalog import ColumnKind
from repro.fastframe.table import CategoricalColumn, Table

__all__ = ["Dimension", "ForeignKey", "denormalize"]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge: ``column`` on the referencing table → dimension."""

    column: str
    dimension: "Dimension"


@dataclass(frozen=True)
class Dimension:
    """One dimension table of a star/snowflake schema.

    Parameters
    ----------
    name:
        Prefix for the dimension's attributes in the joined view
        (``"airport"`` → ``"airport.state"``).
    table:
        The dimension's data; the ``key`` column must hold unique values.
    key:
        Primary-key column joined against referencing foreign keys.
    foreign_keys:
        The dimension's own outgoing edges (what makes the schema a
        snowflake rather than a star).
    """

    name: str
    table: Table
    key: str
    foreign_keys: tuple[ForeignKey, ...] = field(default=())


def _raw_values(table: Table, column: str) -> np.ndarray:
    """A column's raw (decoded) values, whatever its storage class."""
    if table.column_kind(column) is ColumnKind.CATEGORICAL:
        categorical = table.categorical(column)
        return np.asarray(categorical.dictionary, dtype=object)[categorical.codes]
    return table.continuous(column)


def _match_rows(fact_keys: np.ndarray, dim_keys: np.ndarray, edge: str) -> np.ndarray:
    """Dimension row index for each fact row (sorted-key searchsorted join).

    Raises
    ------
    ValueError
        If the dimension key is not unique, or a fact key has no match
        (referential-integrity violation).
    """
    order = np.argsort(dim_keys, kind="stable")
    sorted_keys = dim_keys[order]
    if sorted_keys.size > 1 and (sorted_keys[1:] == sorted_keys[:-1]).any():
        raise ValueError(f"dimension key for edge {edge!r} contains duplicates")
    positions = np.searchsorted(sorted_keys, fact_keys)
    positions = np.clip(positions, 0, sorted_keys.size - 1)
    matched = sorted_keys[positions] == fact_keys
    if not matched.all():
        missing = np.asarray(fact_keys)[~matched][:3]
        raise ValueError(
            f"foreign key {edge!r}: {int((~matched).sum())} fact rows have "
            f"no dimension match (e.g. {missing.tolist()})"
        )
    return order[positions]


def _attach_dimension(view: Table, fk: ForeignKey, fact_table: Table) -> None:
    """Join one dimension's attributes (recursively flattened) into ``view``."""
    dim = fk.dimension
    flat = denormalize(dim.table, dim.foreign_keys) if dim.foreign_keys else dim.table
    fact_keys = _raw_values(fact_table, fk.column)
    dim_keys = _raw_values(flat, dim.key)
    rows = _match_rows(fact_keys, dim_keys, edge=f"{fk.column} -> {dim.name}.{dim.key}")
    for attr in flat.columns():
        if attr == dim.key:
            continue
        qualified = f"{dim.name}.{attr}" if "." not in attr else f"{dim.name}.{attr.split('.', 1)[1]}"
        if flat.column_kind(attr) is ColumnKind.CATEGORICAL:
            source = flat.categorical(attr)
            view.add_categorical(
                qualified,
                CategoricalColumn(codes=source.codes[rows], dictionary=source.dictionary),
            )
        else:
            view.add_continuous(
                qualified,
                flat.continuous(attr)[rows],
                bounds=flat.catalog.bounds(attr),
            )


def denormalize(fact: Table, foreign_keys) -> Table:
    """Materialize the joined view of a fact table over its dimensions.

    Returns a new :class:`Table` holding every fact column (foreign-key
    columns included, so they remain filterable) plus each reachable
    dimension attribute under a ``dimension.attribute`` name.  Catalog range
    bounds are inherited, so deliberately padded bounds survive the join.

    The result is an ordinary table: wrap it in a
    :class:`~repro.fastframe.scramble.Scramble` and query it like any other.
    """
    view = Table()
    for name in fact.columns():
        if fact.column_kind(name) is ColumnKind.CATEGORICAL:
            source = fact.categorical(name)
            view.add_categorical(
                name,
                CategoricalColumn(codes=source.codes.copy(), dictionary=source.dictionary),
            )
        else:
            view.add_continuous(
                name, fact.continuous(name).copy(), bounds=fact.catalog.bounds(name)
            )
    for fk in foreign_keys:
        _attach_dimension(view, fk, fact)
    return view
