"""Multi-query sessions with an auditable δ budget (§4.1).

A scramble's "up-front shuffling cost need only be paid once in order to
facilitate many queries, although care must be taken to set the error
probability δ small enough when running multiple queries to avoid losing
error bounder guarantees" (§4.1).  The subtlety: the scramble's permutation
is *reused* across queries, so query-level failure events are not
independent; a union bound over every query run in the session is what
keeps the joint guarantee.

:class:`Session` packages that bookkeeping.  It is constructed with a total
session-level error probability and a per-query allocation policy:

* ``"even"`` — the session is declared for up to ``max_queries`` queries
  and each receives ``δ_session / max_queries`` (the paper's policy: at
  δ = 1e-15, "union bounding over the number of queries run, the upper
  bound on the error probability will still be sufficiently small … for
  any practical number of queries");
* ``"harmonic"`` — an open-ended session: query ``k`` receives
  ``(6/π²)·δ_session/k²`` (the same Basel-series decay Algorithm 5 uses
  across rounds), so *any* number of queries may be run and the spent
  probability still telescopes to at most ``δ_session``.

After each query the session records what was spent; :attr:`spent_delta`
and :meth:`audit` expose the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import Query, QueryResult
from repro.fastframe.scan import SamplingStrategy
from repro.fastframe.scramble import Scramble
from repro.stats.delta import DEFAULT_DELTA, optstop_round_delta

__all__ = ["Session", "QueryLedgerEntry"]


@dataclass(frozen=True)
class QueryLedgerEntry:
    """One line of the session's δ ledger."""

    index: int
    name: str
    delta: float
    rows_read: int
    stopped_early: bool


class Session:
    """Runs a sequence of queries against one scramble under a joint δ.

    Parameters
    ----------
    scramble:
        The shared pre-shuffled store.
    bounder:
        Error bounder used for every query in the session.
    session_delta:
        Total error probability for *all* queries combined: with
        probability at least ``1 − session_delta`` every interval returned
        by every query in the session is simultaneously valid.
    policy:
        ``"even"`` (requires ``max_queries``) or ``"harmonic"`` (open
        ended); see the module docstring.
    max_queries:
        Declared query capacity for the ``"even"`` policy.
    strategy, alpha, count_method, round_rows, rng:
        Passed through to each query's
        :class:`~repro.fastframe.executor.ApproximateExecutor`.
    """

    def __init__(
        self,
        scramble: Scramble,
        bounder: ErrorBounder,
        session_delta: float = DEFAULT_DELTA,
        policy: str = "even",
        max_queries: int = 100,
        strategy: SamplingStrategy | None = None,
        rng: np.random.Generator | None = None,
        **executor_kwargs,
    ) -> None:
        if policy not in ("even", "harmonic"):
            raise ValueError(f"unknown policy {policy!r}; expected 'even' or 'harmonic'")
        if not 0.0 < session_delta < 1.0:
            raise ValueError(f"session_delta must be in (0, 1), got {session_delta}")
        if policy == "even" and max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {max_queries}")
        if not bounder.ssi:
            raise ValueError(
                f"bounder {bounder.name!r} is not SSI; session-level "
                "guarantees require sample-size-independent bounders (§1)"
            )
        self.scramble = scramble
        self.bounder = bounder
        self.session_delta = session_delta
        self.policy = policy
        self.max_queries = max_queries
        self.strategy = strategy
        self.rng = rng or np.random.default_rng()
        self.executor_kwargs = executor_kwargs
        self._ledger: list[QueryLedgerEntry] = []

    # ------------------------------------------------------------------

    @property
    def queries_run(self) -> int:
        return len(self._ledger)

    @property
    def spent_delta(self) -> float:
        """Total error probability consumed so far (union bound)."""
        return sum(entry.delta for entry in self._ledger)

    def next_query_delta(self) -> float:
        """The δ the next query will receive under the session policy."""
        if self.policy == "even":
            if self.queries_run >= self.max_queries:
                raise RuntimeError(
                    f"session declared for {self.max_queries} queries has "
                    f"run all of them; start a new session or use the "
                    f"'harmonic' policy for open-ended sessions"
                )
            return self.session_delta / self.max_queries
        return optstop_round_delta(self.session_delta, self.queries_run + 1)

    def execute(self, query: Query, start_block: int | None = None) -> QueryResult:
        """Run one query, charging its δ to the session ledger."""
        delta = self.next_query_delta()
        executor = ApproximateExecutor(
            self.scramble,
            self.bounder,
            strategy=self.strategy,
            delta=delta,
            rng=self.rng,
            **self.executor_kwargs,
        )
        result = executor.execute(query, start_block=start_block)
        self._ledger.append(
            QueryLedgerEntry(
                index=len(self._ledger) + 1,
                name=query.name or query.describe(),
                delta=delta,
                rows_read=result.metrics.rows_read,
                stopped_early=result.metrics.stopped_early,
            )
        )
        return result

    def audit(self) -> tuple[QueryLedgerEntry, ...]:
        """The ledger: per-query δ allocations in execution order."""
        return tuple(self._ledger)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(policy={self.policy!r}, queries_run={self.queries_run}, "
            f"spent={self.spent_delta:.3g} of {self.session_delta:.3g})"
        )
