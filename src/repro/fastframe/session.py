"""Multi-query δ ledgers and the legacy :class:`Session` front-end (§4.1).

A scramble's "up-front shuffling cost need only be paid once in order to
facilitate many queries, although care must be taken to set the error
probability δ small enough when running multiple queries to avoid losing
error bounder guarantees" (§4.1).  The subtlety: the scramble's permutation
is *reused* across queries, so query-level failure events are not
independent; a union bound over every query run in the session is what
keeps the joint guarantee.

:class:`DeltaLedger` packages that bookkeeping.  It is constructed with a
total session-level error probability and a per-query allocation policy:

* ``"even"`` — the session is declared for up to ``max_queries`` queries
  and each receives ``δ_session / max_queries`` (the paper's policy: at
  δ = 1e-15, "union bounding over the number of queries run, the upper
  bound on the error probability will still be sufficiently small … for
  any practical number of queries");
* ``"harmonic"`` — an open-ended session: query ``k`` receives
  ``(6/π²)·δ_session/k²`` (the same Basel-series decay Algorithm 5 uses
  across rounds), so *any* number of queries may be run and the spent
  probability still telescopes to at most ``δ_session``.

Each query is :meth:`~DeltaLedger.charge`\\ d *before* it runs (so batched
and sequential execution spend identically) and
:meth:`~DeltaLedger.settle`\\ d with its cost counters afterwards;
:attr:`~DeltaLedger.spent_delta` and :meth:`~DeltaLedger.audit` expose the
ledger.

:class:`Session` is the original eager front door, kept for backward
compatibility and rebuilt as a thin layer over
:class:`repro.api.Connection` — the lazy connection/handle API that adds
``gather()`` shared-scan batching.  New code should call
:func:`repro.connect` directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.fastframe.query import Query, QueryResult
from repro.fastframe.scan import SamplingStrategy
from repro.fastframe.scramble import Scramble
from repro.stats.delta import DEFAULT_DELTA, optstop_round_delta

__all__ = ["DeltaLedger", "Session", "QueryLedgerEntry", "LEDGER_POLICIES"]

#: Per-query δ allocation policies a ledger supports.
LEDGER_POLICIES = ("even", "harmonic")


@dataclass(frozen=True)
class QueryLedgerEntry:
    """One line of the session's δ ledger."""

    index: int
    name: str
    delta: float
    rows_read: int
    stopped_early: bool


class DeltaLedger:
    """The session-level δ budget: allocation policy + auditable spend.

    Parameters
    ----------
    session_delta:
        Total error probability for *all* queries combined: with
        probability at least ``1 − session_delta`` every interval returned
        by every charged query is simultaneously valid.
    policy:
        ``"even"`` (requires ``max_queries``) or ``"harmonic"`` (open
        ended); see the module docstring.
    max_queries:
        Declared query capacity for the ``"even"`` policy.
    """

    def __init__(
        self,
        session_delta: float = DEFAULT_DELTA,
        policy: str = "even",
        max_queries: int = 100,
    ) -> None:
        if policy not in LEDGER_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected 'even' or 'harmonic'"
            )
        if not 0.0 < session_delta < 1.0:
            raise ValueError(
                f"session_delta must be in (0, 1), got {session_delta}"
            )
        if policy == "even" and max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {max_queries}")
        self.session_delta = session_delta
        self.policy = policy
        self.max_queries = max_queries
        self._entries: list[QueryLedgerEntry] = []

    # ------------------------------------------------------------------

    @property
    def queries_run(self) -> int:
        return len(self._entries)

    @property
    def spent_delta(self) -> float:
        """Total error probability consumed so far (union bound)."""
        return sum(entry.delta for entry in self._entries)

    def next_delta(self) -> float:
        """The δ the next charged query will receive under the policy."""
        return self.preview(1)[0]

    def preview(self, count: int) -> tuple[float, ...]:
        """The δs the next ``count`` charges will receive — committing
        nothing.

        Allocation is deterministic in charge order, so callers can build
        and *validate* executions against previewed δs and only charge the
        ledger once nothing can fail any more (a failed query must not
        strand spent δ).
        """
        self.ensure_capacity(count)
        if self.policy == "even":
            return (self.session_delta / self.max_queries,) * count
        return tuple(
            optstop_round_delta(self.session_delta, self.queries_run + k)
            for k in range(1, count + 1)
        )

    def ensure_capacity(self, count: int) -> None:
        """Raise unless ``count`` more queries can be charged.

        Batch callers (``gather``) check the whole batch *before* charging
        anything, so a capacity overflow never strands partially-charged,
        never-run queries on the ledger.
        """
        if (
            self.policy == "even"
            and self.queries_run + count > self.max_queries
        ):
            remaining = self.max_queries - self.queries_run
            shortfall = (
                "run all of them"
                if remaining == 0
                else f"only {remaining} left ({count} requested)"
            )
            raise RuntimeError(
                f"session declared for {self.max_queries} queries has "
                f"{shortfall}; start a new session or use the 'harmonic' "
                f"policy for open-ended sessions"
            )

    def charge(self, name: str) -> QueryLedgerEntry:
        """Allocate the next query's δ and open its ledger line.

        Charging happens *before* execution: the allocation order is the
        charge order, so a batched gather spends exactly what the same
        queries charged sequentially would.  The entry's cost counters
        start at zero until :meth:`settle` fills them in.
        """
        entry = QueryLedgerEntry(
            index=len(self._entries) + 1,
            name=name,
            delta=self.next_delta(),
            rows_read=0,
            stopped_early=False,
        )
        self._entries.append(entry)
        return entry

    def settle(self, index: int, rows_read: int, stopped_early: bool) -> None:
        """Fill in a charged entry's post-execution cost counters."""
        entry = self._entries[index - 1]
        self._entries[index - 1] = dataclasses.replace(
            entry, rows_read=rows_read, stopped_early=stopped_early
        )

    def audit(self) -> tuple[QueryLedgerEntry, ...]:
        """The ledger: per-query δ allocations in charge order."""
        return tuple(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLedger(policy={self.policy!r}, "
            f"queries_run={self.queries_run}, "
            f"spent={self.spent_delta:.3g} of {self.session_delta:.3g})"
        )


class Session:
    """Runs a sequence of queries against one scramble under a joint δ.

    The original eager multi-query front end, preserved for backward
    compatibility: each :meth:`execute` call charges the ledger and runs
    immediately.  Internally it is a thin layer over
    :class:`repro.api.Connection`; prefer :func:`repro.connect` in new
    code — it adds lazy query handles and shared-scan ``gather()``
    batching on the same ledger semantics.

    Parameters
    ----------
    scramble:
        The shared pre-shuffled store.
    bounder:
        Error bounder used for every query in the session.
    session_delta:
        Total error probability for *all* queries combined.
    policy:
        ``"even"`` (requires ``max_queries``) or ``"harmonic"`` (open
        ended); see the module docstring.
    max_queries:
        Declared query capacity for the ``"even"`` policy.
    strategy, alpha, count_method, round_rows, rng:
        Passed through to each query's
        :class:`~repro.fastframe.executor.ApproximateExecutor`.
    """

    def __init__(
        self,
        scramble: Scramble,
        bounder: ErrorBounder,
        session_delta: float = DEFAULT_DELTA,
        policy: str = "even",
        max_queries: int = 100,
        strategy: SamplingStrategy | None = None,
        rng: np.random.Generator | None = None,
        **executor_kwargs,
    ) -> None:
        # Imported here: repro.api sits above fastframe in the layering.
        from repro.api.connection import Connection

        self._connection = Connection(
            scramble,
            bounder=bounder,
            delta=session_delta,
            policy=policy,
            max_queries=max_queries,
            strategy=strategy,
            rng=rng,
            **executor_kwargs,
        )
        self.scramble = scramble
        self.bounder = self._connection.bounder
        self.strategy = strategy
        self.rng = self._connection.rng
        self.executor_kwargs = executor_kwargs

    # ------------------------------------------------------------------

    @property
    def connection(self):
        """The underlying :class:`repro.api.Connection`."""
        return self._connection

    @property
    def ledger(self) -> DeltaLedger:
        return self._connection.ledger

    @property
    def session_delta(self) -> float:
        return self.ledger.session_delta

    @property
    def policy(self) -> str:
        return self.ledger.policy

    @property
    def max_queries(self) -> int:
        return self.ledger.max_queries

    @property
    def queries_run(self) -> int:
        return self.ledger.queries_run

    @property
    def spent_delta(self) -> float:
        """Total error probability consumed so far (union bound)."""
        return self.ledger.spent_delta

    def next_query_delta(self) -> float:
        """The δ the next query will receive under the session policy."""
        return self.ledger.next_delta()

    def execute(self, query: Query, start_block: int | None = None) -> QueryResult:
        """Run one query, charging its δ to the session ledger."""
        return self._connection.query(query).result(start_block=start_block)

    def audit(self) -> tuple[QueryLedgerEntry, ...]:
        """The ledger: per-query δ allocations in execution order."""
        return self.ledger.audit()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(policy={self.policy!r}, queries_run={self.queries_run}, "
            f"spent={self.spent_delta:.3g} of {self.session_delta:.3g})"
        )
