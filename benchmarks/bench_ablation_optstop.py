"""Ablation: OptStop round size B and the δ-decay's cost (§4.2).

The paper fixes B = 40,000 and leaves alternatives to future work; this
ablation quantifies the trade-off: smaller rounds stop closer to the
minimal sample size but recompute bounds more often and burn error budget
faster (δ′ = (6/π²)·δ/k² shrinks with every recomputation), while larger
rounds overshoot.  Also measures the δ-decay overhead itself by comparing
OptStop's stopped width against a single fixed-size interval at the same
sample count (condition Ê's full-budget shortcut).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.stopping import fixed_size_interval, optional_stopping

DATA_SIZE = 400_000
TARGET_WIDTH = 0.6


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(31)
    return np.minimum(rng.lognormal(0.0, 1.0, DATA_SIZE), 40.0)


@pytest.mark.parametrize("batch_size", [2_500, 10_000, 40_000, 160_000])
def test_round_size(benchmark, data, batch_size):
    def run():
        return optional_stopping(
            data,
            get_bounder("bernstein+rt"),
            0.0,
            40.0,
            delta=1e-9,
            should_stop=lambda interval, est: interval.width < TARGET_WIDTH,
            batch_size=batch_size,
            rng=np.random.default_rng(5),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.interval.width < TARGET_WIDTH or not result.stopped_early
    benchmark.extra_info["samples"] = result.samples
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["stopped_early"] = result.stopped_early


def test_delta_decay_overhead(benchmark, data):
    """How much width does the anytime guarantee cost at a fixed sample
    count?  (Condition Ê's full-budget one-shot vs. round-k's decayed δ.)"""

    def run():
        stopped = optional_stopping(
            data,
            get_bounder("bernstein+rt"),
            0.0,
            40.0,
            delta=1e-9,
            should_stop=lambda interval, est: interval.width < TARGET_WIDTH,
            batch_size=40_000,
            rng=np.random.default_rng(6),
        )
        one_shot = fixed_size_interval(
            data,
            get_bounder("bernstein+rt"),
            stopped.samples,
            0.0,
            40.0,
            1e-9,
            rng=np.random.default_rng(6),
        )
        return stopped, one_shot

    stopped, one_shot = benchmark.pedantic(run, rounds=1, iterations=1)
    # The anytime interval is looser, but only by a modest factor: the
    # k² decay costs log-factor width, not rate.
    assert one_shot.interval.width <= stopped.interval.width
    assert stopped.interval.width <= 2.0 * one_shot.interval.width
    benchmark.extra_info["optstop_width"] = round(stopped.interval.width, 4)
    benchmark.extra_info["one_shot_width"] = round(one_shot.interval.width, 4)
