"""Table 2 / Figure 3: bounder pathology profiles and the DKW PMA demo.

Regenerates the paper's conceptual artifacts: the PMA/PHOS matrix of
Table 2 (asserted, not just reported) and a quantitative rendering of
Figure 3's point — the Anderson/DKW lower bound parks its ε mass at the
range endpoint ``a``, leaving an irreducible ``ε·(b − a)`` width floor on
zero-spread data where Bernstein's floor decays an order faster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.bounders.pathology import exhibits_phos, exhibits_pma
from repro.bounders.theory import anderson_width_floor, half_width

TABLE2 = {
    "hoeffding": (True, True),
    "bernstein": (False, True),
    "anderson": (True, False),
    "hoeffding+rt": (True, False),
    "bernstein+rt": (False, False),
}


@pytest.mark.parametrize("bounder_name", sorted(TABLE2))
def test_table2_profile(benchmark, bounder_name):
    bounder = get_bounder(bounder_name)

    def profile():
        return exhibits_pma(bounder), exhibits_phos(bounder)

    pma, phos = benchmark.pedantic(profile, rounds=1, iterations=1)
    assert (pma, phos) == TABLE2[bounder_name]
    benchmark.extra_info["pma"] = pma
    benchmark.extra_info["phos"] = phos


def test_figure3_dkw_endpoint_mass(benchmark):
    """Figure 3's quantitative content: on zero-spread data the DKW
    bound's width floor scales as Θ((b−a)/√m) while Bernstein's scales as
    Θ((b−a)/m)."""

    def floors():
        rows = {}
        for m in (1_000, 16_000, 256_000):
            anderson = anderson_width_floor(m, 0.0, 1.0, 1e-6)
            bernstein = 2 * half_width(
                "bernstein", m, 100 * m, 0.0, 1.0, 5e-7, sigma=0.0
            )
            rows[m] = (anderson, bernstein)
        return rows

    rows = benchmark.pedantic(floors, rounds=1, iterations=1)
    sizes = sorted(rows)
    for small, large in zip(sizes, sizes[1:]):
        ratio = large / small  # 16x more samples
        anderson_shrink = rows[small][0] / rows[large][0]
        bernstein_shrink = rows[small][1] / rows[large][1]
        assert anderson_shrink == pytest.approx(np.sqrt(ratio), rel=0.05)
        assert bernstein_shrink == pytest.approx(ratio, rel=0.05)
        benchmark.extra_info[f"anderson_floor@{large}"] = round(rows[large][0], 6)
        benchmark.extra_info[f"bernstein_floor@{large}"] = round(rows[large][1], 6)
