"""Ablation: Lemma 5 (Hoeffding-Serfling) vs exact hypergeometric COUNT CIs.

§4.1 uses "a simple strategy that uses Hoeffding-Serfling" to bound view
selectivities but notes one could use "bounds specifically tailored to the
hypergeometric distribution (or even perform an exact computation)".  This
bench quantifies the tradeoff both ways: interval width (exact is never
wider, and much tighter at small coverage) and CPU cost per bound (exact
pays ~2·log₂(R) tail sums per call).
"""

from __future__ import annotations

import pytest

from repro.fastframe.count import SelectivityState, count_interval
from repro.fastframe.hypergeometric import hypergeometric_count_interval

SCRAMBLE_ROWS = 2_000_000
DELTA = 1e-9

#: (in_view, covered) regimes: sparse early scan, moderate, dense late scan.
REGIMES = {
    "sparse-early": (12, 40_000),
    "moderate": (4_000, 40_000),
    "dense-late": (150_000, 1_500_000),
}

METHODS = {
    "serfling": count_interval,
    "exact": hypergeometric_count_interval,
}


@pytest.mark.parametrize("regime", sorted(REGIMES))
@pytest.mark.parametrize("method", sorted(METHODS))
def test_count_interval_cost(benchmark, regime, method):
    in_view, covered = REGIMES[regime]
    state = SelectivityState()
    state.observe(in_view, covered)
    bound = METHODS[method]

    interval = benchmark(bound, state, SCRAMBLE_ROWS, DELTA)
    benchmark.extra_info["width"] = round(interval.width, 1)
    benchmark.extra_info["lo"] = round(interval.lo, 1)
    benchmark.extra_info["hi"] = round(interval.hi, 1)


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_exact_dominates_serfling(benchmark, regime):
    in_view, covered = REGIMES[regime]
    state = SelectivityState()
    state.observe(in_view, covered)

    def widths():
        serfling = count_interval(state, SCRAMBLE_ROWS, DELTA)
        exact = hypergeometric_count_interval(state, SCRAMBLE_ROWS, DELTA)
        return serfling, exact

    serfling, exact = benchmark.pedantic(widths, rounds=1, iterations=1)
    benchmark.extra_info["serfling_width"] = round(serfling.width, 1)
    benchmark.extra_info["exact_width"] = round(exact.width, 1)
    assert exact.lo >= serfling.lo - 1e-9
    assert exact.hi <= serfling.hi + 1e-9
    # In the sparse regime the exact bound is dramatically tighter — the
    # very regime that bottlenecks GROUP BY queries (§5.4.1).
    if regime == "sparse-early":
        assert exact.width < serfling.width / 10.0
