"""Ablation: OptStop round schedules — Algorithm 5 vs geometric doubling.

§4.2 leaves "development of alternative approaches to future work".  This
bench prices the alternative the implementation ships: after a full-data
run with many rounds, the arithmetic schedule's binding error probability
has decayed like δ/k² (k = m/B rounds) while the geometric schedule's has
decayed only like δ/2^{log₂(m/B)} = δ·B/m — exponentially less decay —
yielding strictly tighter final intervals at identical total sample
counts, in exchange for power-of-two stopping granularity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.stopping.optstop import optional_stopping

ROWS = 200_000
BATCH = 500  # small rounds → many arithmetic rounds → visible decay cost
DELTA = 1e-9


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    return rng.lognormal(2.0, 1.0, size=ROWS)


@pytest.mark.parametrize("schedule", ["arithmetic", "geometric"])
def test_schedule_exhaustion_width(benchmark, dataset, schedule):
    a, b = float(dataset.min()), float(dataset.max())

    def run():
        return optional_stopping(
            dataset,
            get_bounder("bernstein+rt"),
            a=a,
            b=b,
            delta=DELTA,
            should_stop=lambda interval, estimate: False,  # run to exhaustion
            batch_size=BATCH,
            rng=np.random.default_rng(1),
            schedule=schedule,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["final_width"] = round(result.interval.width, 5)
    assert result.samples == ROWS
    assert result.interval.lo <= float(dataset.mean()) <= result.interval.hi


def test_geometric_tighter_fewer_rounds(benchmark, dataset):
    a, b = float(dataset.min()), float(dataset.max())

    def run_both():
        outcomes = {}
        for schedule in ("arithmetic", "geometric"):
            outcomes[schedule] = optional_stopping(
                dataset,
                get_bounder("bernstein+rt"),
                a=a,
                b=b,
                delta=DELTA,
                should_stop=lambda interval, estimate: False,
                batch_size=BATCH,
                rng=np.random.default_rng(1),
                schedule=schedule,
            )
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    arithmetic, geometric = outcomes["arithmetic"], outcomes["geometric"]
    benchmark.extra_info["arithmetic_rounds"] = arithmetic.rounds
    benchmark.extra_info["geometric_rounds"] = geometric.rounds
    benchmark.extra_info["width_ratio"] = round(
        arithmetic.interval.width / geometric.interval.width, 3
    )
    assert geometric.rounds < arithmetic.rounds / 10
    assert geometric.interval.width < arithmetic.interval.width
