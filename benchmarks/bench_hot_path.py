"""Hot-path benchmark: vectorized pool engine vs the scalar reference.

Times a full-scan AVG GROUP BY query (an unachievable accuracy target, so
every row is ingested and every round recomputes bounds for every view) at
1, 10, 100, and 1000 groups, for both executor engines, and emits
``BENCH_hot_path.json`` with rows/sec and per-round latency — the start of
the repository's performance trajectory (see PERFORMANCE.md).

Standalone script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py

Environment knobs:

``BENCH_HOT_PATH_ROWS``
    Table size (default 400,000; CI smoke uses a smaller value).
``BENCH_HOT_PATH_REPS``
    Timed repetitions per configuration; the minimum is reported
    (default 3).
``BENCH_HOT_PATH_BOUNDER``
    Registry name of the bounder (default ``bernstein+rt``, the paper's
    headline configuration).
``BENCH_HOT_PATH_OUT``
    Output JSON path (default ``BENCH_hot_path.json`` in the working
    directory).
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import AbsoluteAccuracy

ROWS = int(os.environ.get("BENCH_HOT_PATH_ROWS", "400000"))
REPS = int(os.environ.get("BENCH_HOT_PATH_REPS", "3"))
BOUNDER = os.environ.get("BENCH_HOT_PATH_BOUNDER", "bernstein+rt")
OUT = os.environ.get("BENCH_HOT_PATH_OUT", "BENCH_hot_path.json")
GROUP_COUNTS = (1, 10, 100, 1000)
DELTA = 1e-9


def _scramble_with_groups(groups: int) -> Scramble:
    rng = np.random.default_rng(groups)
    table = Table(
        continuous={"x": rng.normal(100.0, 15.0, ROWS)},
        categorical={"g": rng.integers(0, groups, ROWS).astype(str)},
    )
    return Scramble(table, rng=np.random.default_rng(groups + 1))


def _executor(scramble: Scramble, engine: str) -> ApproximateExecutor:
    return ApproximateExecutor(
        scramble,
        get_bounder(BOUNDER),
        delta=DELTA,
        rng=np.random.default_rng(2),
        engine=engine,
    )


def _time_engine(scramble: Scramble, query: Query, engine: str) -> tuple[float, int]:
    best = float("inf")
    rounds = 0
    for _ in range(REPS):
        executor = _executor(scramble, engine)
        start = time.perf_counter()
        result = executor.execute(query, start_block=0)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        rounds = result.metrics.rounds
        assert result.metrics.rows_read == scramble.num_rows  # full scan
    return best, rounds


def run() -> dict:
    query_target = AbsoluteAccuracy(1e-9)  # unachievable: forces a full scan
    results = []
    for groups in GROUP_COUNTS:
        scramble = _scramble_with_groups(groups)
        query = Query(AggregateFunction.AVG, "x", query_target, group_by=("g",))
        # Warm load-time metadata (bitmap index, group domain, combined
        # codes) so timings measure query execution, not catalog builds.
        _executor(scramble, "pool").execute(query, start_block=0)

        scalar_s, rounds = _time_engine(scramble, query, "scalar")
        pool_s, _ = _time_engine(scramble, query, "pool")
        entry = {
            "groups": groups,
            "rounds": rounds,
            "scalar_s": round(scalar_s, 6),
            "pool_s": round(pool_s, 6),
            "speedup": round(scalar_s / pool_s, 2),
            "rows_per_s_scalar": round(ROWS / scalar_s),
            "rows_per_s_pool": round(ROWS / pool_s),
            "per_round_ms_scalar": round(1e3 * scalar_s / max(rounds, 1), 3),
            "per_round_ms_pool": round(1e3 * pool_s / max(rounds, 1), 3),
        }
        results.append(entry)
        print(
            f"groups={groups:>5}  scalar={scalar_s:.3f}s  pool={pool_s:.3f}s  "
            f"speedup={entry['speedup']:>5}x  pool rows/s={entry['rows_per_s_pool']:,}"
        )
    return {
        "benchmark": "hot_path",
        "rows": ROWS,
        "reps": REPS,
        "bounder": BOUNDER,
        "delta": DELTA,
        "results": results,
    }


def main() -> int:
    payload = run()
    with open(OUT, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {OUT}")
    top = payload["results"][-1]
    if top["groups"] >= 1000 and top["speedup"] < 5.0:
        print(
            f"WARNING: 1000-group speedup {top['speedup']}x below the 5x target",
            file=sys.stderr,
        )
        # Shared CI runners are noisy; only fail the build when asked to
        # enforce the target (BENCH_HOT_PATH_STRICT=1).
        if os.environ.get("BENCH_HOT_PATH_STRICT") == "1":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
