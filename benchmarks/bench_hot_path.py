"""Hot-path benchmark: vectorized pool engine vs the scalar reference,
plus shared-scan gather vs sequential dashboard execution.

Part 1 times a full-scan AVG GROUP BY query (an unachievable accuracy
target, so every row is ingested and every round recomputes bounds for
every view) at 1, 10, 100, and 1000 groups, for both executor engines.

Part 2 times the paper's dashboard workload through the connection
front-end: a 6-query mix (HAVING thresholds, accuracy contracts, top-K,
COUNT) resolved sequentially (one scan cursor per query) vs via
``conn.gather()`` (one shared cursor + one window frame per pass feeding
every query's view pool), reporting rows fetched, value elements
gathered (once per shared window, not once per query), per-view bound
recomputations (incremental rounds), and wall time for both paths — and
asserting the per-query intervals are identical (≤ 1e-9) to sequential
execution from the same start block.

Part 3 times the same gathered dashboard serial
(``parallelism=1``) vs parallel (``BENCH_PARALLELISM`` worker processes,
default 2): the multi-core ingest pipeline of
``repro/fastframe/parallel.py``.  Per-query intervals must again match
the serial gather to ≤ 1e-9 (they are in fact bit-identical); the
``parallel`` JSON entry records both wall times, the speedup, the core
count, the asserted parity flag, and the worker-kernel stage split —
worker partition wall vs main-process merge wall and the delta bytes
shipped over IPC (native bounder deltas are O(views) per window).  On a
single-core host the pipeline still runs (correctness is the point of
the entry); a wall-clock win is only expected with ≥ 2 cores.

Part 4 times the fused ingest kernel
(``repro/fastframe/kernels.partition_ingest``) against a faithful
reimplementation of the composed legacy passes across group
cardinalities straddling the bucketing threshold (asserting
byte-identical output), and sweeps ``task_batch`` ∈ {1, 3, auto} over
the parallel dashboard gather (asserting interval parity).  The
``kernel`` JSON entry records the fused-vs-legacy sweep, the bucketing
crossover, and the batching sweep.

Part 5 times Anderson's pooled CSR sample buffers against the per-view
buffer baseline (one ``SampleState`` per view, the pre-CSR pool layout):
windowed sorted-stream ingest and the batched confidence-interval
kernel, asserting ≤ 1e-9 parity between the layouts.  The ``anderson``
JSON entry records both walls and the speedups.

Part 6 spills the dashboard scramble to an mmap block store
(``repro/fastframe/storage.py``) and runs the 6-query dashboard cold
(every block read from disk) then warm (a second connection served by
the shared cross-connection block cache), asserting interval parity
with resident execution, a ≥ 50% byte saving on the warm connection,
and the zero-copy gather contract (no whole-column materialization).
The ``storage`` JSON entry records the spill/cold/warm walls and the
block-I/O ledger.

Emits ``BENCH_hot_path.json`` — the repository's performance trajectory
(see PERFORMANCE.md).

Standalone script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py

Environment knobs:

``BENCH_HOT_PATH_ROWS``
    Table size (default 400,000; CI smoke uses a smaller value).
``BENCH_HOT_PATH_REPS``
    Timed repetitions per configuration; the minimum is reported
    (default 3).
``BENCH_HOT_PATH_BOUNDER``
    Registry name of the bounder (default ``bernstein+rt``, the paper's
    headline configuration).
``BENCH_HOT_PATH_OUT``
    Output JSON path (default ``BENCH_hot_path.json`` in the working
    directory).
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.api import connect
from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import AbsoluteAccuracy

ROWS = int(os.environ.get("BENCH_HOT_PATH_ROWS", "400000"))
REPS = int(os.environ.get("BENCH_HOT_PATH_REPS", "3"))
BOUNDER = os.environ.get("BENCH_HOT_PATH_BOUNDER", "bernstein+rt")
OUT = os.environ.get("BENCH_HOT_PATH_OUT", "BENCH_hot_path.json")
PARALLELISM = max(int(os.environ.get("BENCH_PARALLELISM", "2")), 2)
GROUP_COUNTS = (1, 10, 100, 1000)
DELTA = 1e-9


def _scramble_with_groups(groups: int) -> Scramble:
    rng = np.random.default_rng(groups)
    table = Table(
        continuous={"x": rng.normal(100.0, 15.0, ROWS)},
        categorical={"g": rng.integers(0, groups, ROWS).astype(str)},
    )
    return Scramble(table, rng=np.random.default_rng(groups + 1))


def _executor(scramble: Scramble, engine: str) -> ApproximateExecutor:
    return ApproximateExecutor(
        scramble,
        get_bounder(BOUNDER),
        delta=DELTA,
        rng=np.random.default_rng(2),
        engine=engine,
    )


def _time_engines_paired(
    scramble: Scramble, query: Query
) -> tuple[float, float, int]:
    """Best-of-REPS for scalar and pool with the reps interleaved.

    Timing one engine's full rep loop and then the other's lets clock /
    load drift between the loops masquerade as an engine-speed ratio; the
    paired loop (same idiom as the fault-overhead measurement) exposes
    both engines to the same conditions rep by rep.
    """
    scalar_best = pool_best = float("inf")
    rounds = 0
    for _ in range(REPS):
        for engine in ("scalar", "pool"):
            executor = _executor(scramble, engine)
            start = time.perf_counter()
            result = executor.execute(query, start_block=0)
            elapsed = time.perf_counter() - start
            assert result.metrics.rows_read == scramble.num_rows  # full scan
            if engine == "scalar":
                scalar_best = min(scalar_best, elapsed)
                rounds = result.metrics.rounds
            else:
                pool_best = min(pool_best, elapsed)
    return scalar_best, pool_best, rounds


def run() -> dict:
    query_target = AbsoluteAccuracy(1e-9)  # unachievable: forces a full scan
    results = []
    for groups in GROUP_COUNTS:
        scramble = _scramble_with_groups(groups)
        query = Query(AggregateFunction.AVG, "x", query_target, group_by=("g",))
        # Warm load-time metadata (bitmap index, group domain, combined
        # codes) so timings measure query execution, not catalog builds.
        _executor(scramble, "pool").execute(query, start_block=0)

        scalar_s, pool_s, rounds = _time_engines_paired(scramble, query)
        entry = {
            "groups": groups,
            "rounds": rounds,
            "scalar_s": round(scalar_s, 6),
            "pool_s": round(pool_s, 6),
            "speedup": round(scalar_s / pool_s, 2),
            "rows_per_s_scalar": round(ROWS / scalar_s),
            "rows_per_s_pool": round(ROWS / pool_s),
            "per_round_ms_scalar": round(1e3 * scalar_s / max(rounds, 1), 3),
            "per_round_ms_pool": round(1e3 * pool_s / max(rounds, 1), 3),
        }
        results.append(entry)
        print(
            f"groups={groups:>5}  scalar={scalar_s:.3f}s  pool={pool_s:.3f}s  "
            f"speedup={entry['speedup']:>5}x  pool rows/s={entry['rows_per_s_pool']:,}"
        )
    return {
        "benchmark": "hot_path",
        "rows": ROWS,
        "reps": REPS,
        "bounder": BOUNDER,
        "delta": DELTA,
        "results": results,
    }


def _dashboard_scramble() -> Scramble:
    rng = np.random.default_rng(42)
    table = Table(
        continuous={
            "delay": rng.gamma(2.0, 6.0, ROWS) - 4.0,
            "distance": rng.uniform(100.0, 2500.0, ROWS),
        },
        categorical={
            "airline": rng.integers(0, 12, ROWS).astype(str),
            "origin": rng.integers(0, 40, ROWS).astype(str),
        },
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(43))


def _dashboard_handles(conn):
    """A 6-query dashboard: the paper's §4.1 multi-query session shape."""
    return [
        conn.table().group_by("airline").named("having-hi").avg("delay", above=9.0),
        conn.table().group_by("airline").named("having-lo").avg("delay", above=7.5),
        conn.table().where("origin", "7").named("origin-avg").avg("delay", rel=0.2),
        conn.table().group_by("airline").named("top3").avg("delay", top=3),
        conn.table().group_by("airline").named("counts").count(rel=0.05),
        conn.table().named("distance").avg("distance", rel=0.01),
    ]


def _dashboard_connection(
    scramble: Scramble,
    parallelism: int = 1,
    engine: str = "auto",
    task_batch: int | None = None,
):
    return connect(
        scramble,
        bounder=BOUNDER,
        delta=DELTA,
        policy="harmonic",
        rng=np.random.default_rng(9),
        parallelism=parallelism,
        engine=engine,
        task_batch=task_batch,
    )


def _assert_intervals_match(gathered, sequential) -> None:
    """Statistical honesty: batching must not change any answer."""
    assert gathered.metrics.rows_read == sequential.metrics.rows_read
    assert set(gathered.groups) == set(sequential.groups)
    for key, left in gathered.groups.items():
        right = sequential.groups[key]
        for x, y in (
            (left.interval.lo, right.interval.lo),
            (left.interval.hi, right.interval.hi),
        ):
            if np.isfinite(x) or np.isfinite(y):
                assert abs(x - y) <= 1e-9 * max(1.0, abs(x), abs(y)), (key, x, y)
            else:
                assert x == y


def run_dashboard() -> dict:
    """Gather-vs-sequential on the 6-query dashboard (best of REPS)."""
    scramble = _dashboard_scramble()
    start_block = 0
    # Warm load-time metadata so timings measure execution, not catalog builds.
    conn = _dashboard_connection(scramble)
    conn.gather(_dashboard_handles(conn), start_block=start_block)

    sequential_s = float("inf")
    shared_s = float("inf")
    sequential_rows = shared_rows = 0
    sequential_values = shared_values = 0
    sequential_bounds = shared_bounds = 0
    windows = 0
    for _ in range(REPS):
        conn = _dashboard_connection(scramble)
        handles = _dashboard_handles(conn)
        start = time.perf_counter()
        results = [handle.result(start_block=start_block) for handle in handles]
        sequential_s = min(sequential_s, time.perf_counter() - start)
        sequential_rows = sum(r.metrics.rows_read for r in results)
        sequential_values = sum(r.metrics.values_gathered for r in results)
        sequential_bounds = sum(r.metrics.bounds_recomputed for r in results)

        conn = _dashboard_connection(scramble)
        handles = _dashboard_handles(conn)
        start = time.perf_counter()
        batch = conn.gather(handles, start_block=start_block)
        shared_s = min(shared_s, time.perf_counter() - start)
        shared_rows = batch.rows_read_shared
        shared_values = batch.values_gathered
        shared_bounds = batch.metrics.bounds_recomputed
        windows = batch.metrics.rounds
        for gathered, sequential in zip(batch.results, results):
            _assert_intervals_match(gathered, sequential)
    # The window frame gathers each distinct column once per shared
    # window, however many of the 6 queries aggregate it.
    assert 0 < shared_values < sequential_values
    entry = {
        "queries": 6,
        "rows_read_sequential": sequential_rows,
        "rows_read_shared": shared_rows,
        "rows_saved_pct": round(100.0 * (1.0 - shared_rows / sequential_rows), 1),
        "values_gathered_sequential": sequential_values,
        "values_gathered_shared": shared_values,
        "values_saved_pct": round(
            100.0 * (1.0 - shared_values / sequential_values), 1
        ),
        "bounds_recomputed_sequential": sequential_bounds,
        "bounds_recomputed_shared": shared_bounds,
        "sequential_s": round(sequential_s, 6),
        "gather_s": round(shared_s, 6),
        "wall_speedup": round(sequential_s / shared_s, 2),
        "shared_windows": windows,
    }
    print(
        f"dashboard: sequential {sequential_rows:,} rows / {sequential_s:.3f}s, "
        f"gather {shared_rows:,} rows / {shared_s:.3f}s "
        f"({entry['rows_saved_pct']}% rows saved, {entry['wall_speedup']}x wall)"
    )
    print(
        f"dashboard: values gathered {sequential_values:,} sequential vs "
        f"{shared_values:,} shared ({entry['values_saved_pct']}% saved); "
        f"bounds recomputed {sequential_bounds:,} vs {shared_bounds:,}"
    )
    return entry


def run_parallel() -> dict:
    """Serial vs parallel gather on the dashboard (best of REPS).

    Wall-time speedup is hardware-bound (a 1-core host cannot win), but
    interval parity is asserted unconditionally — the parallel pipeline
    must be a pure performance knob.
    """
    scramble = _dashboard_scramble()
    start_block = 0
    # Pool engine on both sides: the worker-kernel protocol (partition in
    # workers, O(views) delta merge in main) only drives pool runs, and
    # the dashboard's GROUP BY cardinalities sit below the auto
    # threshold, where auto would dispatch to the scalar loop.
    engine = "pool"
    # Warm load-time metadata and the worker pool (fork + first-task cost).
    conn = _dashboard_connection(scramble, parallelism=PARALLELISM, engine=engine)
    conn.gather(_dashboard_handles(conn), start_block=start_block)

    serial_s = float("inf")
    serial_batch = parallel_batch = None
    for _ in range(REPS):
        conn = _dashboard_connection(scramble, parallelism=1, engine=engine)
        handles = _dashboard_handles(conn)
        start = time.perf_counter()
        serial_batch = conn.gather(handles, start_block=start_block)
        serial_s = min(serial_s, time.perf_counter() - start)

    # The fault-overhead comparison below is a percentage of a ~25ms
    # gather, where best-of-3 is dominated by scheduler noise (it once
    # reported −1.3%, i.e. the armed run "won").  Use the median of at
    # least 5 paired reps for both sides of that ratio; the headline
    # parallel_s stays best-of for comparability with serial_s.
    fault_reps = max(REPS, 5)
    parallel_times = []
    for _ in range(fault_reps):
        conn = _dashboard_connection(scramble, parallelism=PARALLELISM, engine=engine)
        handles = _dashboard_handles(conn)
        start = time.perf_counter()
        parallel_batch = conn.gather(handles, start_block=start_block)
        parallel_times.append(time.perf_counter() - start)
    parallel_s = min(parallel_times)

    # Fault-machinery overhead: the recovery layer (deadline-waited
    # futures, per-dispatch chaos draws, attempt bookkeeping) must be
    # ~free when no fault fires.  An armed zero-rate plan exercises the
    # full draw path without ever injecting.
    from repro.testing.faults import FaultPlan, install_fault_plan, reset_faults

    armed_times = []
    armed_batch = None
    install_fault_plan(FaultPlan(rate=0.0))
    try:
        for _ in range(fault_reps):
            conn = _dashboard_connection(
                scramble, parallelism=PARALLELISM, engine=engine
            )
            handles = _dashboard_handles(conn)
            start = time.perf_counter()
            armed_batch = conn.gather(handles, start_block=start_block)
            armed_times.append(time.perf_counter() - start)
    finally:
        reset_faults()
    fault_armed_s = float(np.median(armed_times))
    assert not armed_batch.metrics.recovery_snapshot(), (
        "a zero-rate fault plan must never trigger recovery"
    )

    for parallel_result, serial_result in zip(parallel_batch, serial_batch):
        _assert_intervals_match(parallel_result, serial_result)
    for armed_result, serial_result in zip(armed_batch, serial_batch):
        _assert_intervals_match(armed_result, serial_result)
    assert parallel_batch.rows_read_shared == serial_batch.rows_read_shared
    assert parallel_batch.values_gathered == serial_batch.values_gathered
    cores = os.cpu_count() or 1
    stage = parallel_batch.metrics
    # Median-of-paired-medians, floored at 0: the machinery cannot make
    # the gather *faster*, so a negative ratio is measurement noise by
    # definition and reports as 0.0.
    parallel_median_s = float(np.median(parallel_times))
    fault_overhead_pct = round(
        max(0.0, 100.0 * (fault_armed_s - parallel_median_s) / parallel_median_s),
        1,
    )
    entry = {
        "parallelism": PARALLELISM,
        "cores": cores,
        "queries": len(serial_batch.handles),
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 2),
        "interval_parity": True,  # asserted ≤1e-9 above
        # Worker-kernel stage split of the LAST parallel rep: partition
        # wall is summed across worker tasks (can exceed elapsed time),
        # merge wall is the main process's delta folds.
        "partition_wall_s": round(stage.partition_wall_s, 6),
        "merge_wall_s": round(stage.merge_wall_s, 6),
        "delta_bytes_returned": int(stage.delta_bytes_returned),
        # Recovery machinery cost with injection disabled: armed
        # zero-rate plan vs plain parallel, median of >= 5 paired reps
        # each, floored at 0 (negative = noise).  The CI gate warns
        # above 2%.
        "fault_reps": fault_reps,
        "fault_armed_s": round(fault_armed_s, 6),
        "fault_overhead_pct": fault_overhead_pct,
    }
    print(
        f"parallel ingest: serial gather {serial_s:.3f}s vs "
        f"parallelism={PARALLELISM} {parallel_s:.3f}s "
        f"({entry['speedup']}x on {cores} core(s)); intervals identical; "
        f"stages: partition {stage.partition_wall_s:.3f}s (worker-summed) / "
        f"merge {stage.merge_wall_s:.3f}s, "
        f"{stage.delta_bytes_returned:,} delta bytes over IPC; "
        f"fault machinery armed: {fault_armed_s:.3f}s median "
        f"({fault_overhead_pct:.1f}% overhead floor-0, "
        f"median of {fault_reps} paired reps, no faults fired)"
    )
    return entry


def run_kernel() -> dict:
    """The fused ingest kernel vs the composed legacy passes.

    Times :func:`~repro.fastframe.kernels.partition_ingest` (one fused
    slice → gather → sort → lookup pass, with low-cardinality bucketing)
    against a faithful reimplementation of the pre-kernel composition
    (boolean gather, int64 stable argsort, permutation gather, checked
    lookup) on the full-scan all-pass slice, across group cardinalities
    straddling ``BUCKET_MAX_CARDINALITY`` — the bucketing crossover.
    Asserts byte-identical ``view_idx``/``values`` at every point.

    Also sweeps ``task_batch`` ∈ {1, 3, auto} over the parallel
    dashboard gather, asserting interval parity across batch sizes and
    recording how batching moves wall and worker-summed partition wall.
    """
    from repro.fastframe.kernels import (
        BUCKET_MAX_CARDINALITY,
        lookup_codes,
        partition_ingest,
        slice_elements,
    )

    rng = np.random.default_rng(77)
    n = min(ROWS, 200_000)
    values = rng.normal(0.0, 1.0, n)
    pred = np.ones(n, dtype=bool)  # all-pass: the full-scan hot case

    def legacy_partition(codes, combined):
        """The pre-kernel composed passes, verbatim: gather the slice,
        stable-sort the raw int64 codes, permute values, rank codes."""
        window_slice = slice_elements(n, None, lambda: pred)
        pick = window_slice.pick
        view_values = values[pick]
        view_combined = combined[pick]
        order = np.argsort(view_combined, kind="stable")
        return lookup_codes(codes, view_combined[order]), view_values[order]

    def fused_partition(codes, combined):
        return partition_ingest(
            n,
            None,
            lambda: pred,
            codes,
            values_of=lambda pick: values[pick],
            combined_of=lambda pick: combined[pick],
        )

    sweep = []
    for groups in (8, 256, 4096, BUCKET_MAX_CARDINALITY, 2 * BUCKET_MAX_CARDINALITY):
        codes = np.arange(groups, dtype=np.int64)
        combined = rng.integers(0, groups, n).astype(np.int64)
        legacy_s = fused_s = float("inf")
        delta = legacy_idx = legacy_values = None
        for _ in range(REPS):
            start = time.perf_counter()
            legacy_idx, legacy_values = legacy_partition(codes, combined)
            legacy_s = min(legacy_s, time.perf_counter() - start)
            start = time.perf_counter()
            delta = fused_partition(codes, combined)
            fused_s = min(fused_s, time.perf_counter() - start)
        # Byte-identity: the fused kernel is an optimization, not a
        # different algorithm.
        assert np.array_equal(delta.view_idx, legacy_idx)
        assert np.array_equal(delta.values, legacy_values)
        sweep.append(
            {
                "groups": groups,
                "bucketed": groups <= BUCKET_MAX_CARDINALITY,
                "legacy_s": round(legacy_s, 6),
                "fused_s": round(fused_s, 6),
                "speedup": round(legacy_s / fused_s, 2),
            }
        )
        print(
            f"kernel: groups={groups:>6}  legacy={legacy_s:.4f}s  "
            f"fused={fused_s:.4f}s  speedup={sweep[-1]['speedup']:>5}x"
            f"{'  (bucketed)' if sweep[-1]['bucketed'] else ''}"
        )
    winning = [e["groups"] for e in sweep if e["bucketed"] and e["speedup"] > 1.0]
    crossover = max(winning) if winning else 0

    # task_batch sweep over the parallel dashboard gather: batching
    # amortizes attach + IPC per window without changing a byte.
    scramble = _dashboard_scramble()
    start_block = 0
    conn = _dashboard_connection(scramble, parallelism=PARALLELISM, engine="pool")
    conn.gather(_dashboard_handles(conn), start_block=start_block)  # warm
    batch_sweep = []
    reference = None
    for task_batch in (1, 3, None):
        wall_s = float("inf")
        batch = None
        for _ in range(REPS):
            conn = _dashboard_connection(
                scramble,
                parallelism=PARALLELISM,
                engine="pool",
                task_batch=task_batch,
            )
            handles = _dashboard_handles(conn)
            start = time.perf_counter()
            batch = conn.gather(handles, start_block=start_block)
            wall_s = min(wall_s, time.perf_counter() - start)
        if reference is None:
            reference = batch
        else:
            for result, ref_result in zip(batch, reference):
                _assert_intervals_match(result, ref_result)
        batch_sweep.append(
            {
                "task_batch": "auto" if task_batch is None else task_batch,
                "gather_s": round(wall_s, 6),
                "partition_wall_s": round(batch.metrics.partition_wall_s, 6),
                "delta_bytes_returned": int(batch.metrics.delta_bytes_returned),
            }
        )
        print(
            f"kernel: task_batch={batch_sweep[-1]['task_batch']:>4}  "
            f"gather={wall_s:.3f}s  partition_wall="
            f"{batch.metrics.partition_wall_s:.3f}s (worker-summed)"
        )
    return {
        "rows": n,
        "bucket_max_cardinality": BUCKET_MAX_CARDINALITY,
        "bucket_crossover_groups": crossover,
        "fused_vs_legacy": sweep,
        "byte_identity": True,  # asserted per cardinality above
        "task_batch_sweep": batch_sweep,
        "task_batch_parity": True,  # asserted ≤1e-9 across the sweep
    }


def run_anderson() -> dict:
    """CSR pooled sample buffers vs the per-view-buffer baseline.

    Replays the same windowed sorted streams through both layouts —
    the CSR pool's vectorized segment appends + grouped row-wise
    ``np.partition`` bound kernel vs one Python ``SampleState`` per view
    with per-view trimmed means (the pre-CSR pool layout) — and asserts
    the resulting intervals agree to ≤ 1e-9.
    """
    from repro.bounders.anderson import (
        AndersonBounder,
        SampleState,
        anderson_lower_bound,
    )
    from repro.bounders.base import iter_segments

    # High-cardinality regime (the pool engine's target): the per-view
    # Python loop is the baseline's bottleneck, the CSR pool's segment
    # scatter and grouped partition kernel amortize over views.
    views = int(os.environ.get("BENCH_ANDERSON_VIEWS", "2000"))
    rows = min(ROWS, 200_000)
    window = 20_000
    a, b, delta = 0.0, 200.0, 1e-6
    rng = np.random.default_rng(23)
    windows = []
    for start in range(0, rows, window):
        count = min(window, rows - start)
        indices = np.sort(rng.integers(0, views, count)).astype(np.int64)
        windows.append((indices, rng.uniform(a + 1.0, b - 1.0, count)))
    bounder = AndersonBounder()
    n_plus = np.full(views, rows, dtype=np.int64)

    csr_ingest_s = csr_bound_s = float("inf")
    base_ingest_s = base_bound_s = float("inf")
    csr_bounds = base_bounds = None
    for _ in range(REPS):
        pool = bounder.init_pool(views)
        start = time.perf_counter()
        for indices, values in windows:
            bounder.update_pool(pool, indices, values)
        csr_ingest_s = min(csr_ingest_s, time.perf_counter() - start)
        start = time.perf_counter()
        csr_bounds = bounder.confidence_interval_batch(pool, a, b, n_plus, delta)
        csr_bound_s = min(csr_bound_s, time.perf_counter() - start)

        states = [SampleState() for _ in range(views)]
        start = time.perf_counter()
        for indices, values in windows:
            for seg_start, seg_end, slot in iter_segments(indices):
                states[slot].extend(values[seg_start:seg_end])
        base_ingest_s = min(base_ingest_s, time.perf_counter() - start)
        start = time.perf_counter()
        half = delta / 2.0
        lo = np.empty(views)
        hi = np.empty(views)
        for slot in range(views):
            sample = states[slot].values
            lo[slot] = anderson_lower_bound(sample, a, half)
            hi[slot] = (a + b) - anderson_lower_bound((a + b) - sample, a, half)
        base_bounds = (np.clip(lo, a, b), np.clip(hi, a, b))
        base_bound_s = min(base_bound_s, time.perf_counter() - start)

    for csr_arr, base_arr in zip(csr_bounds, base_bounds):
        assert np.allclose(csr_arr, base_arr, rtol=1e-9, atol=1e-9)
    entry = {
        "views": views,
        "rows": rows,
        "windows": len(windows),
        "csr_ingest_s": round(csr_ingest_s, 6),
        "baseline_ingest_s": round(base_ingest_s, 6),
        "ingest_speedup": round(base_ingest_s / csr_ingest_s, 2),
        "csr_bound_s": round(csr_bound_s, 6),
        "baseline_bound_s": round(base_bound_s, 6),
        "bound_speedup": round(base_bound_s / csr_bound_s, 2),
        "layout_parity": True,  # asserted ≤1e-9 above
    }
    print(
        f"anderson pool: ingest CSR {csr_ingest_s:.4f}s vs per-view "
        f"{base_ingest_s:.4f}s ({entry['ingest_speedup']}x); bound CSR "
        f"{csr_bound_s:.4f}s vs {base_bound_s:.4f}s "
        f"({entry['bound_speedup']}x) at {views} views"
    )
    return entry


def run_quantile() -> dict:
    """Grouped quantile-rank kernel vs the per-view scalar loop.

    The quantile family rides the same CSR pool as Anderson, but its
    bound kernel selects order statistics: one row-wise ``np.sort`` per
    equal-count group serves both CI endpoints.  The baseline is the
    scalar reference — one ``QuantileBounder.confidence_interval`` call
    per view.  Both paths pick elements of the same multiset, so parity
    is asserted **exactly**, not to 1e-9.
    """
    from repro.bounders.quantile import QuantileBounder

    rows = min(ROWS, 200_000)
    window = 20_000
    a, b, delta, p = 0.0, 200.0, 1e-6, 0.95
    sweep = []
    for views in (10, 100, 2000):
        rng = np.random.default_rng(views)
        windows = []
        for start in range(0, rows, window):
            count = min(window, rows - start)
            indices = np.sort(rng.integers(0, views, count)).astype(np.int64)
            windows.append((indices, rng.uniform(a + 1.0, b - 1.0, count)))
        bounder = QuantileBounder(p)
        n_plus = np.full(views, rows, dtype=np.int64)

        pool_s = scalar_s = float("inf")
        pool_bounds = scalar_bounds = None
        for _ in range(REPS):
            pool = bounder.init_pool(views)
            states = [bounder.init_state() for _ in range(views)]
            for indices, values in windows:
                bounder.update_pool(pool, indices, values)
                boundaries = np.flatnonzero(np.diff(indices)) + 1
                for chunk, slot in zip(
                    np.split(values, boundaries), np.unique(indices)
                ):
                    bounder.update_batch(states[slot], chunk)

            start = time.perf_counter()
            pool_bounds = bounder.confidence_interval_batch(
                pool, a, b, n_plus, delta
            )
            pool_s = min(pool_s, time.perf_counter() - start)

            start = time.perf_counter()
            lo = np.empty(views)
            hi = np.empty(views)
            for slot in range(views):
                interval = bounder.confidence_interval(
                    states[slot], a, b, rows, delta
                )
                lo[slot], hi[slot] = interval.lo, interval.hi
            scalar_bounds = (lo, hi)
            scalar_s = min(scalar_s, time.perf_counter() - start)

        assert np.array_equal(pool_bounds[0], scalar_bounds[0])
        assert np.array_equal(pool_bounds[1], scalar_bounds[1])
        sweep.append(
            {
                "views": views,
                "pool_bound_s": round(pool_s, 6),
                "scalar_bound_s": round(scalar_s, 6),
                "speedup": round(scalar_s / pool_s, 2),
            }
        )
        print(
            f"quantile(p={p}) bound: pool {pool_s:.4f}s vs scalar "
            f"{scalar_s:.4f}s ({sweep[-1]['speedup']}x) at {views} views"
        )
    return {
        "p": p,
        "rows": rows,
        "sweep": sweep,
        "pool_parity": True,  # asserted exact (==) above
    }


def run_storage() -> dict:
    """Out-of-core block storage: cold vs warm-cache dashboard.

    Spills the dashboard scramble to an mmap block store and runs the
    6-query dashboard on a *cold* connection (every demanded block read
    from disk) and then on a second connection over the same directory
    (the shared cross-connection cache serves the blocks the first one
    paid for).  Asserts interval parity (≤ 1e-9; in fact byte-identical)
    against resident in-memory execution, that the warm connection reads
    ≥ 50% fewer bytes than the cold one, and that the gather path never
    materializes a whole value column (zero-copy block views only).
    """
    import shutil
    import tempfile

    from repro.fastframe.storage import open_block_scramble, write_block_store

    scramble = _dashboard_scramble()
    start_block = 0
    # Resident reference (also warms load-time metadata shapes).
    conn = _dashboard_connection(scramble)
    reference = conn.gather(_dashboard_handles(conn), start_block=start_block)

    directory = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        spill_start = time.perf_counter()
        write_block_store(directory, scramble, block_rows=16_384)
        spill_s = time.perf_counter() - spill_start

        oc_scramble = open_block_scramble(directory)
        store = oc_scramble.storage
        try:
            start = time.perf_counter()
            conn = _dashboard_connection(oc_scramble)
            cold_batch = conn.gather(_dashboard_handles(conn), start_block=start_block)
            cold_s = time.perf_counter() - start
            cold_bytes = store.stats.bytes_read
            cold_blocks = store.stats.blocks_read

            # Second connection over the same directory: the store
            # registry + shared block cache serve it without re-reading.
            start = time.perf_counter()
            conn = _dashboard_connection(open_block_scramble(directory))
            warm_batch = conn.gather(_dashboard_handles(conn), start_block=start_block)
            warm_s = time.perf_counter() - start
            warm_bytes = store.stats.bytes_read - cold_bytes

            for batch in (cold_batch, warm_batch):
                for oc_result, ref_result in zip(batch, reference):
                    _assert_intervals_match(oc_result, ref_result)
            assert cold_bytes > 0
            assert warm_bytes <= 0.5 * cold_bytes, (warm_bytes, cold_bytes)
            # Zero-copy contract: value gathers slice block views, they
            # never fault whole columns in.
            materialized = store.stats.materialized_columns
            zero_copy = not {"delay", "distance"} & materialized
            assert zero_copy, materialized
            stats = store.stats
            entry = {
                "rows": ROWS,
                "block_rows": 16_384,
                "spill_s": round(spill_s, 6),
                "cold_gather_s": round(cold_s, 6),
                "warm_gather_s": round(warm_s, 6),
                "cold_bytes_read": int(cold_bytes),
                "cold_blocks_read": int(cold_blocks),
                "warm_bytes_read": int(warm_bytes),
                "warm_bytes_saved_pct": round(
                    100.0 * (1.0 - warm_bytes / cold_bytes), 1
                ),
                "cache_hits": int(stats.cache_hits),
                "cache_evictions": int(stats.cache_evictions),
                "prefetch_hits": int(stats.prefetch_hits),
                "interval_parity": True,  # asserted ≤1e-9 vs in-memory above
                "zero_copy": zero_copy,
            }
            print(
                f"storage: spill {spill_s:.3f}s; cold gather {cold_s:.3f}s "
                f"({cold_bytes:,} bytes / {cold_blocks} blocks), warm gather "
                f"{warm_s:.3f}s ({warm_bytes:,} bytes, "
                f"{entry['warm_bytes_saved_pct']}% saved); "
                f"{stats.cache_hits} cache hits, {stats.prefetch_hits} "
                f"prefetch hits; intervals identical to in-memory"
            )
            return entry
        finally:
            store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main() -> int:
    payload = run()
    payload["dashboard"] = run_dashboard()
    payload["parallel"] = run_parallel()
    payload["kernel"] = run_kernel()
    payload["anderson"] = run_anderson()
    payload["quantile"] = run_quantile()
    payload["storage"] = run_storage()
    with open(OUT, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {OUT}")
    failed = False
    top = payload["results"][-1]
    if top["groups"] >= 1000 and top["speedup"] < 5.0:
        print(
            f"WARNING: 1000-group speedup {top['speedup']}x below the 5x target",
            file=sys.stderr,
        )
        # Shared CI runners are noisy; only fail the build when asked to
        # enforce the target (BENCH_HOT_PATH_STRICT=1).
        failed = True
    # Low-cardinality floor: the bucketing kernel exists so the pool
    # engine stops losing to the scalar loop at tiny group counts
    # (historically 0.62x at 1 group).  Pool must stay >= 0.9x scalar.
    for entry in payload["results"]:
        if entry["groups"] <= 10 and entry["speedup"] < 0.9:
            print(
                f"WARNING: pool is {entry['speedup']}x scalar at "
                f"{entry['groups']} group(s), below the 0.9x floor",
                file=sys.stderr,
            )
            failed = True
    if failed and os.environ.get("BENCH_HOT_PATH_STRICT") == "1":
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
