"""Shared fixtures for the benchmark harness.

The bench scramble defaults to 2M rows (override with the
``REPRO_BENCH_ROWS`` environment variable; the paper-shape results sharpen
with scale, see EXPERIMENTS.md).  Bitmap indexes and group domains are
prewarmed so benchmark timings measure query execution, not load-time
metadata construction.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import make_flights_scramble
from repro.experiments import ALL_QUERIES, build_query, warm_metadata

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "2000000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: Moderate error probability for benches.  The paper uses δ=1e-15; at the
#: reproduction's 2M-row scale the extra log-factor would push several
#: queries into full scans that are early-stoppable at 606M rows, washing
#: out exactly the between-bounder contrasts the tables exist to show.
#: δ=1e-9 preserves "effectively deterministic" correctness while keeping
#: sample complexities in the regime the paper's tables exhibit.  Set
#: REPRO_BENCH_DELTA=1e-15 to run at the paper's value.
BENCH_DELTA = float(os.environ.get("REPRO_BENCH_DELTA", "1e-9"))


@pytest.fixture(scope="session")
def bench_scramble():
    scramble = make_flights_scramble(rows=BENCH_ROWS, seed=BENCH_SEED)
    for name in ALL_QUERIES:
        warm_metadata(scramble, build_query(name))
    return scramble
