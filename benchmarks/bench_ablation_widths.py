"""Ablation: CI width vs. sample size across distribution regimes.

Quantifies the analytic story behind Tables 2/5: on each synthetic
distribution (uniform, two-point worst case, clustered, outlier-inflated)
we measure the realized two-sided CI width of every bounder at several
sample sizes.  Expected orderings, asserted below:

* clustered/outlier regimes — Bernstein ≪ Hoeffding (no PMA), and
  RangeTrim tightens further when the observed extrema sit far inside the
  catalog bounds (no PHOS);
* two-point worst case — Hoeffding is (near-)optimal and nothing beats it
  by much; RangeTrim never hurts materially.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.datasets.synthetic import DATASET_GENERATORS

BOUNDERS = ("hoeffding", "hoeffding+rt", "bernstein", "bernstein+rt", "anderson")
SAMPLE_SIZE = 5_000
POPULATION = 500_000
DELTA = 1e-9


def realized_width(bounder_name: str, data: np.ndarray, a: float, b: float) -> float:
    rng = np.random.default_rng(0)
    sample = data[rng.permutation(data.size)[:SAMPLE_SIZE]]
    bounder = get_bounder(bounder_name)
    state = bounder.init_state()
    bounder.update_batch(state, sample)
    return bounder.confidence_interval(state, a, b, data.size, DELTA).width


@pytest.mark.parametrize("dataset_name", sorted(DATASET_GENERATORS))
@pytest.mark.parametrize("bounder_name", BOUNDERS)
def test_width(benchmark, dataset_name, bounder_name):
    rng = np.random.default_rng(17)
    data, a, b = DATASET_GENERATORS[dataset_name](POPULATION, rng)

    width = benchmark.pedantic(
        lambda: realized_width(bounder_name, data, a, b), rounds=3, iterations=1
    )
    benchmark.extra_info["width"] = round(float(width), 6)
    benchmark.extra_info["range"] = b - a


def test_ordering_outlier_regime(benchmark):
    """The paper's motivating regime, asserted end to end."""
    rng = np.random.default_rng(23)
    data, a, b = DATASET_GENERATORS["outlier"](POPULATION, rng)

    def widths():
        return {name: realized_width(name, data, a, b) for name in BOUNDERS}

    result = benchmark.pedantic(widths, rounds=1, iterations=1)
    # Bernstein's variance-sensitivity halves the (clipped) width; the raw
    # half-width ratio is larger still (see test_bernstein.py).
    assert result["bernstein"] < result["hoeffding"] / 2
    assert result["bernstein+rt"] <= result["bernstein"] * 1.01
    assert result["hoeffding+rt"] <= result["hoeffding"] * 1.01
    for name, width in result.items():
        benchmark.extra_info[name] = round(width, 4)


def test_ordering_two_point_regime(benchmark):
    """Hoeffding's optimality case: RangeTrim must not hurt (§7's 'without
    ever hurting performance in the worst case')."""
    rng = np.random.default_rng(29)
    data, a, b = DATASET_GENERATORS["two-point"](POPULATION, rng)

    def widths():
        return {name: realized_width(name, data, a, b) for name in BOUNDERS}

    result = benchmark.pedantic(widths, rounds=1, iterations=1)
    assert result["hoeffding+rt"] <= result["hoeffding"] * 1.05
    assert result["bernstein+rt"] <= result["bernstein"] * 1.05
