"""Figure 7(b): blocks fetched vs. the HAVING threshold of F-q2.

The x-axis sweeps the threshold across the range of airline aggregates;
expected shape (§5.4.3): thresholds far from every airline's mean (near
0) terminate almost immediately, and blocks fetched spikes whenever the
threshold approaches a group aggregate — with Bernstein-based bounders
more robust (needing the threshold much closer before being affected)
than Hoeffding-based ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.bounders import EVALUATED_BOUNDERS
from repro.experiments import build_query, fq2, run_query_once
from repro.fastframe import ExactExecutor

_aggregates_cache: dict = {}


def _thresholds(scramble):
    """One easy threshold (0), one mid-gap, one adjacent to an aggregate."""
    key = id(scramble)
    if key not in _aggregates_cache:
        exact = ExactExecutor(scramble).execute(build_query("F-q2"))
        _aggregates_cache[key] = sorted(
            group.estimate for group in exact.groups.values()
        )
    aggregates = _aggregates_cache[key]
    lowest = aggregates[0]
    mid_gap = 0.5 * (aggregates[4] + aggregates[5])
    near_aggregate = aggregates[3] + 0.05
    return {
        "easy(0)": 0.0,
        f"below-min({lowest - 2:.1f})": lowest - 2.0,
        f"mid-gap({mid_gap:.2f})": mid_gap,
        f"near-agg({near_aggregate:.2f})": near_aggregate,
    }


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
@pytest.mark.parametrize("threshold_kind", ["easy", "below-min", "mid-gap", "near-agg"])
def test_having_threshold(benchmark, bench_scramble, threshold_kind, bounder_name):
    thresholds = _thresholds(bench_scramble)
    label, threshold = next(
        (label, value)
        for label, value in thresholds.items()
        if label.startswith(threshold_kind)
    )
    query = fq2(thresh=float(threshold))
    results = []

    def run():
        result = run_query_once(
            bench_scramble, query, bounder_name, delta=BENCH_DELTA, seed=len(results)
        )
        results.append(result)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    last = results[-1]
    benchmark.extra_info["threshold"] = label
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["stopped_early"] = last.metrics.stopped_early
