"""Figure 7(a): requested max relative error vs. actual relative error.

F-q1 is run across a grid of requested ε; the paper's claim — verified as
an assertion here, not just plotted — is that the achieved relative error
always falls within the requested bound, for every bounder, with the more
conservative (PMA-afflicted) Hoeffding bounders driving the achieved
error toward 0 faster as ε shrinks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.bounders import EVALUATED_BOUNDERS
from repro.experiments import sweep_fig7a_relative_error

EPSILONS = (2.0, 1.0, 0.5, 0.25, 0.1)


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
def test_relative_error_sweep(benchmark, bench_scramble, bounder_name):
    def run():
        return sweep_fig7a_relative_error(
            bench_scramble,
            epsilons=EPSILONS,
            bounders=(bounder_name,),
            delta=BENCH_DELTA,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    series = result.series_by_name(bounder_name)
    for requested, actual in zip(EPSILONS, series.values):
        # §5.3: "The observed error should always fall within the
        # requested error bound."
        assert actual <= requested, (bounder_name, requested, actual)
        benchmark.extra_info[f"actual@eps={requested}"] = round(actual, 5)
