"""Figure 6: effect of query selectivity on wall time and blocks fetched.

F-q1[ε = .5] is run with origin airports spanning the selectivity
spectrum (the Zipf popularity of the synthetic airports mirrors the
paper's sweep over origin filters).  Expected shape (§5.4.3): wall time
decreases as selectivity increases; blocks fetched first increases (the
sparsest filters force near-full passes) then decreases (early stopping
kicks in); the RangeTrim gap is largest at intermediate selectivity.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.bounders import EVALUATED_BOUNDERS
from repro.experiments import fq1, run_query_once
from repro.experiments.sweeps import airports_by_selectivity

NUM_AIRPORTS = 5

_airports_cache: dict = {}


def _airports(scramble):
    key = id(scramble)
    if key not in _airports_cache:
        _airports_cache[key] = airports_by_selectivity(scramble, NUM_AIRPORTS)
    return _airports_cache[key]


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
@pytest.mark.parametrize("rank", range(NUM_AIRPORTS))
def test_selectivity_point(benchmark, bench_scramble, rank, bounder_name):
    airports = _airports(bench_scramble)
    if rank >= len(airports):
        pytest.skip("airport rank out of range at this scale")
    airport, selectivity = airports[rank]
    query = fq1(airport=airport, epsilon=0.5)
    results = []

    def run():
        result = run_query_once(
            bench_scramble, query, bounder_name, delta=BENCH_DELTA, seed=len(results)
        )
        results.append(result)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    last = results[-1]
    benchmark.extra_info["airport"] = airport
    benchmark.extra_info["selectivity"] = round(float(selectivity), 6)
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["rows_read"] = last.metrics.rows_read
