"""Offline stratified samples vs the scramble (§6 online-vs-offline AQP).

On the *declared* workload the stratified store answers from its
materialized per-stratum samples without scanning anything, so sparse
groups get full-budget intervals immediately; the scramble must scan far
enough to accumulate the same per-group sample counts.  The flip side —
the strata refusing ad-hoc queries — is asserted in the test suite
(tests/fastframe/test_stratified.py); this bench measures the declared-
workload side of the tradeoff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    Query,
    Scramble,
    StratifiedSampleStore,
    Table,
)
from repro.stopping import SamplesTaken

ROWS = 400_000
PER_STRATUM = 1_000
DELTA = 1e-9


@pytest.fixture(scope="module")
def airline_table():
    rng = np.random.default_rng(0)
    airlines = rng.choice(
        ["WN", "AA", "UA", "F9", "HA"], size=ROWS, p=[0.7, 0.15, 0.1, 0.04, 0.01]
    )
    base = {"WN": 8.0, "AA": 10.0, "UA": 12.0, "F9": 14.0, "HA": 4.0}
    delays = rng.normal([base[a] for a in airlines], 20.0)
    return Table(continuous={"DepDelay": delays}, categorical={"Airline": airlines})


@pytest.fixture(scope="module")
def declared_query():
    return Query(
        AggregateFunction.AVG, "DepDelay", SamplesTaken(PER_STRATUM),
        group_by=("Airline",),
    )


def test_stratified_store(benchmark, airline_table, declared_query):
    store = StratifiedSampleStore(
        airline_table, ("Airline",), per_stratum=PER_STRATUM,
        rng=np.random.default_rng(1),
    )

    def answer():
        return store.execute_avg(declared_query, get_bounder("bernstein+rt"), DELTA)

    results = benchmark(answer)
    benchmark.extra_info["rows_materialized"] = store.rows_materialized
    sparse = results[("HA",)]
    benchmark.extra_info["sparse_group_samples"] = sparse.samples
    benchmark.extra_info["sparse_group_width"] = round(sparse.interval.width, 3)
    assert sparse.samples == PER_STRATUM


def test_scramble_scan(benchmark, airline_table, declared_query):
    scramble = Scramble(airline_table, rng=np.random.default_rng(1))

    def answer():
        executor = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=DELTA,
            rng=np.random.default_rng(2),
        )
        return executor.execute(declared_query, start_block=0)

    result = benchmark.pedantic(answer, rounds=3, iterations=1)
    benchmark.extra_info["rows_read"] = result.metrics.rows_read
    sparse = result.groups[("HA",)]
    benchmark.extra_info["sparse_group_samples"] = sparse.samples
    benchmark.extra_info["sparse_group_width"] = round(sparse.interval.width, 3)
    # The sparse stratum (1% selectivity) forces the scan to read ~100x the
    # per-stratum budget in table rows — the cost stratification avoids on
    # declared workloads.
    assert result.metrics.rows_read > 20 * PER_STRATUM
