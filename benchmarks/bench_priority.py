"""Priority sampling [22] vs uniform scramble sampling for SUM (§6).

Measures the related-work tradeoff the paper describes: priority sampling
copes with outliers (far lower SUM estimation error at equal sample size on
skewed weights) but the attribute must be known ahead of time and values
must be non-negative, whereas the scramble supports any ad-hoc aggregate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe import Table
from repro.fastframe.priority import PrioritySampleIndex

ROWS = 50_000
K = 500
TRIALS = 40


@pytest.fixture(scope="module")
def weighted_table():
    rng = np.random.default_rng(0)
    weights = rng.exponential(10.0, size=ROWS)
    weights[rng.choice(ROWS, size=ROWS // 200, replace=False)] *= 500.0
    return Table(continuous={"w": weights})


def _relative_errors(table, scheme: str) -> np.ndarray:
    weights = table.continuous("w")
    truth = float(weights.sum())
    errors = np.empty(TRIALS)
    for trial in range(TRIALS):
        rng = np.random.default_rng(trial)
        if scheme == "priority":
            estimate = PrioritySampleIndex(table, "w", k=K, rng=rng).sum_estimate()
        else:
            sample = rng.choice(weights, size=K, replace=False)
            estimate = float(sample.mean()) * weights.size
        errors[trial] = abs(estimate - truth) / truth
    return errors


@pytest.mark.parametrize("scheme", ["priority", "uniform"])
def test_sum_error(benchmark, weighted_table, scheme):
    errors = benchmark.pedantic(
        _relative_errors, args=(weighted_table, scheme), rounds=1, iterations=1
    )
    benchmark.extra_info["median_rel_error"] = round(float(np.median(errors)), 5)
    benchmark.extra_info["p90_rel_error"] = round(float(np.quantile(errors, 0.9)), 5)


def test_priority_beats_uniform(benchmark, weighted_table):
    def ratio():
        priority = np.median(_relative_errors(weighted_table, "priority"))
        uniform = np.median(_relative_errors(weighted_table, "uniform"))
        return uniform / priority

    advantage = benchmark.pedantic(ratio, rounds=1, iterations=1)
    benchmark.extra_info["uniform_over_priority_error_ratio"] = round(advantage, 2)
    assert advantage > 3.0
