"""Ablation: outlier indexing [18] vs RangeTrim vs both (§6 related work).

The paper frames the outlier index as "an offline analogy of our own
RangeTrim technique" and notes that for simple aggregates the two are
orthogonal and "could be leveraged together".  This bench measures the
interval width each combination achieves on Figure 2's salary regime at a
fixed sampling budget:

* plain Hoeffding on the full scramble (range-driven, PMA+PHOS);
* Hoeffding over an outlier-indexed store (offline range shrink);
* Hoeffding+RT on the full scramble (online range shrink);
* Bernstein+RT with and without the index (the paper's best, combined).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.fastframe import AggregateFunction, ApproximateExecutor, Query, Scramble, Table
from repro.fastframe.outlier_index import OutlierIndexedStore
from repro.stopping import SamplesTaken

ROWS = 200_000
SAMPLES = SamplesTaken(20_000)
DELTA = 1e-9


def _salary_table(seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    salaries = rng.normal(50.0, 5.0, size=ROWS)
    outliers = rng.choice(ROWS, size=ROWS // 500, replace=False)
    salaries[outliers] = 5_000.0
    return Table(continuous={"salary": salaries})


@pytest.fixture(scope="module")
def salary_table():
    return _salary_table()


@pytest.fixture(scope="module")
def plain_scramble(salary_table):
    return Scramble(salary_table, rng=np.random.default_rng(1))


@pytest.fixture(scope="module")
def indexed_store(salary_table):
    return OutlierIndexedStore(
        salary_table, "salary", outlier_fraction=0.005,
        rng=np.random.default_rng(1),
    )


def _plain_width(scramble, bounder_name: str) -> float:
    executor = ApproximateExecutor(
        scramble, get_bounder(bounder_name), delta=DELTA,
        rng=np.random.default_rng(2),
    )
    query = Query(AggregateFunction.AVG, "salary", SAMPLES)
    return executor.execute(query, start_block=0).scalar().interval.width


def _indexed_width(store, bounder_name: str) -> float:
    result = store.execute_avg(
        SAMPLES, get_bounder(bounder_name), delta=DELTA,
        rng=np.random.default_rng(2), start_block=0,
    )
    return result.interval.width


@pytest.mark.parametrize(
    "variant",
    ["hoeffding", "hoeffding+index", "hoeffding+rt", "bernstein+rt", "bernstein+rt+index"],
)
def test_outlier_ablation(benchmark, plain_scramble, indexed_store, variant):
    if variant.endswith("+index"):
        bounder = variant[: -len("+index")]
        width = benchmark.pedantic(
            _indexed_width, args=(indexed_store, bounder), rounds=1, iterations=1
        )
    else:
        width = benchmark.pedantic(
            _plain_width, args=(plain_scramble, variant), rounds=1, iterations=1
        )
    benchmark.extra_info["interval_width"] = round(width, 4)
    # Structural sanity: every width is positive and finite at this budget.
    assert 0.0 < width < 10_000.0


def test_outlier_ablation_ordering(benchmark, plain_scramble, indexed_store):
    """The paper-shape ordering: offline and online range shrinking each
    beat plain Hoeffding by a large factor, and combining them with the
    PMA-free Bernstein bounder is the tightest of all."""

    def widths():
        return {
            "hoeffding": _plain_width(plain_scramble, "hoeffding"),
            "hoeffding+index": _indexed_width(indexed_store, "hoeffding"),
            "hoeffding+rt": _plain_width(plain_scramble, "hoeffding+rt"),
            "bernstein+rt": _plain_width(plain_scramble, "bernstein+rt"),
            "bernstein+rt+index": _indexed_width(indexed_store, "bernstein+rt"),
        }

    result = benchmark.pedantic(widths, rounds=1, iterations=1)
    for name, width in result.items():
        benchmark.extra_info[name] = round(width, 4)
    assert result["hoeffding+index"] < result["hoeffding"] / 5.0
    assert result["hoeffding+rt"] < result["hoeffding"]
    assert result["bernstein+rt"] < result["hoeffding"]
    assert result["bernstein+rt+index"] <= result["bernstein+rt"]
