"""Table 6: sampling-strategy ablation (Scan vs ActiveSync vs ActivePeek).

Regenerates the paper's architecture ablation: GROUP BY queries run with
the best error bounder (Bernstein+RT) under the three block-selection
strategies.  The paper's findings to reproduce: ActivePeek ≥ ActiveSync ≥
Scan everywhere, with the largest gains on queries bottlenecked by sparse
groups (F-q5, F-q8) where block skipping is crucial.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.experiments import GROUP_BY_QUERIES, build_query, check_correctness, run_query_once
from repro.fastframe import EVALUATED_STRATEGIES, ExactExecutor

_exact_cache: dict = {}


def _exact(scramble, query_name):
    if query_name not in _exact_cache:
        _exact_cache[query_name] = ExactExecutor(scramble).execute(
            build_query(query_name)
        )
    return _exact_cache[query_name]


@pytest.mark.parametrize("strategy_name", EVALUATED_STRATEGIES)
@pytest.mark.parametrize("query_name", GROUP_BY_QUERIES)
def test_strategy(benchmark, bench_scramble, query_name, strategy_name):
    query = build_query(query_name)
    exact = _exact(bench_scramble, query_name)
    runs = []

    def run():
        result = run_query_once(
            bench_scramble,
            query,
            "bernstein+rt",
            strategy_name=strategy_name,
            delta=BENCH_DELTA,
            seed=len(runs),
        )
        runs.append(result)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    last = runs[-1]
    benchmark.extra_info["rows_read"] = last.metrics.rows_read
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["blocks_skipped"] = last.metrics.blocks_skipped
    benchmark.extra_info["index_probes"] = last.metrics.index_probes
    benchmark.extra_info["batch_probes"] = last.metrics.batch_probes
    for result in runs:
        assert check_correctness(query, result, exact, epsilon_slack=1e-9), (
            query_name,
            strategy_name,
        )
