"""Ablation: block size and lookahead batch sensitivity (§4.3).

The paper fixes 25-row blocks and 1024-block lookahead batches.  This
ablation re-runs a sparse-group query (F-q9's shape) across block sizes:
smaller blocks make bitmap skipping more surgical (fewer wasted rows per
fetched block) but multiply index and per-block overhead; larger blocks
approach plain scanning because almost every block contains some active
group's tuple.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_DELTA, BENCH_SEED
from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.experiments import build_query, warm_metadata
from repro.fastframe import ApproximateExecutor, get_strategy

ROWS = 400_000

_scramble_cache: dict = {}


def scramble_with_block_size(block_size: int):
    if block_size not in _scramble_cache:
        scramble = make_flights_scramble(
            rows=ROWS, seed=BENCH_SEED, block_size=block_size
        )
        warm_metadata(scramble, build_query("F-q5"))
        _scramble_cache[block_size] = scramble
    return _scramble_cache[block_size]


@pytest.mark.parametrize("block_size", [10, 25, 100, 400])
def test_block_size(benchmark, block_size):
    scramble = scramble_with_block_size(block_size)
    query = build_query("F-q5")
    results = []

    def run():
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            strategy=get_strategy("activepeek"),
            delta=BENCH_DELTA,
            rng=np.random.default_rng(len(results)),
        )
        result = executor.execute(query)
        results.append(result)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    last = results[-1]
    benchmark.extra_info["rows_read"] = last.metrics.rows_read
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["skip_fraction"] = round(
        last.metrics.blocks_skipped
        / max(last.metrics.blocks_fetched + last.metrics.blocks_skipped, 1),
        4,
    )
