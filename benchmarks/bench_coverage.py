"""Coverage bench: the §1 motivation, quantified.

Regenerates the paper's motivating contrast as a measured artifact:
asymptotic bounders (CLT, bootstrap) produce much tighter intervals than
SSI bounders but *violate* the requested error probability on skewed data,
while every SSI bounder stays below δ at every sample size.  This is the
failure mode (subset/superset error [52]) that disqualifies asymptotic CIs
from with-guarantees early stopping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.coverage import run_coverage_experiment, skewed_dataset

BOUNDERS = ("hoeffding", "bernstein+rt", "clt", "bootstrap")
SAMPLE_SIZES = (20, 50, 100)
DELTA = 0.05
TRIALS = 300


@pytest.fixture(scope="module")
def coverage_cells():
    data = skewed_dataset(n=2_000, rng=np.random.default_rng(0))
    return run_coverage_experiment(
        bounder_names=BOUNDERS,
        sample_sizes=SAMPLE_SIZES,
        delta=DELTA,
        trials=TRIALS,
        data=data,
        seed=0,
    )


@pytest.mark.parametrize("bounder_name", BOUNDERS)
def test_coverage(benchmark, coverage_cells, bounder_name):
    from repro.bounders.registry import get_bounder

    display = get_bounder(bounder_name).name

    def collect():
        return [c for c in coverage_cells if c.bounder == display]

    cells = benchmark.pedantic(collect, rounds=1, iterations=1)
    worst_miss = max(c.miss_rate for c in cells)
    for cell in cells:
        benchmark.extra_info[f"miss_rate@m={cell.sample_size}"] = round(
            cell.miss_rate, 4
        )
        benchmark.extra_info[f"width@m={cell.sample_size}"] = round(
            cell.mean_width, 3
        )
    if cells[0].ssi:
        # SSI bounders must respect δ at every sample size (Definition 1).
        assert worst_miss <= DELTA
    else:
        # The asymptotic bounders' small-m undercoverage is the paper's
        # motivating pathology; on this dataset it is far above δ.
        assert worst_miss > DELTA
