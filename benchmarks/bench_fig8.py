"""Figure 8: blocks fetched vs. minimum departure time for F-q3.

Expected shape (§5.4.3): increasing ``$min_dep_time`` spreads the
airlines' conditional mean delays apart (easier bottom-2 separation) while
sparsifying every group, so blocks fetched trends downward and the gap
between bounders with and without RangeTrim grows — sparse filtered groups
rarely contain outliers, so the observed extrema are far inside the
catalog bounds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.bounders import EVALUATED_BOUNDERS
from repro.experiments import fq3, run_query_once

MIN_DEP_TIMES = (1000.0, 1500.0, 2000.0, 2250.0)


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
@pytest.mark.parametrize("min_dep_time", MIN_DEP_TIMES)
def test_min_dep_time_point(benchmark, bench_scramble, min_dep_time, bounder_name):
    query = fq3(min_dep_time=min_dep_time)
    results = []

    def run():
        result = run_query_once(
            bench_scramble, query, bounder_name, delta=BENCH_DELTA, seed=len(results)
        )
        results.append(result)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    last = results[-1]
    benchmark.extra_info["min_dep_time"] = min_dep_time
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["rows_read"] = last.metrics.rows_read
