"""Table 5: per-query speedup of each error bounder over Exact.

Regenerates the paper's central ablation — Exact vs Hoeffding(-Serfling)
vs Hoeffding+RT vs (empirical) Bernstein(-Serfling) vs Bernstein+RT on all
nine flights queries, reporting wall time and the CPU-independent
blocks-fetched metric (§5.3).  Paper reference values are recorded in
EXPERIMENTS.md; at this substrate's scale, absolute speedups compress but
the ordering (Bernstein+RT ≥ Bernstein ≫ Hoeffding ≥ Exact, with RT's
edge largest on sparse-group queries) is the reproduction target.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DELTA
from repro.bounders import EVALUATED_BOUNDERS
from repro.experiments import build_query, check_correctness, run_query_once
from repro.fastframe import ExactExecutor

QUERIES = tuple(f"F-q{i}" for i in range(1, 10))

_exact_cache: dict = {}


def _exact(scramble, query_name):
    if query_name not in _exact_cache:
        query = build_query(query_name)
        _exact_cache[query_name] = ExactExecutor(scramble).execute(query)
    return _exact_cache[query_name]


@pytest.mark.parametrize("query_name", QUERIES)
def test_exact_baseline(benchmark, bench_scramble, query_name):
    query = build_query(query_name)
    result = benchmark.pedantic(
        lambda: ExactExecutor(bench_scramble).execute(query), rounds=3, iterations=1
    )
    benchmark.extra_info["rows_read"] = result.metrics.rows_read
    benchmark.extra_info["blocks_fetched"] = result.metrics.blocks_fetched


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_bounder(benchmark, bench_scramble, query_name, bounder_name):
    query = build_query(query_name)
    exact = _exact(bench_scramble, query_name)
    runs = []

    def run():
        result = run_query_once(
            bench_scramble, query, bounder_name, delta=BENCH_DELTA, seed=len(runs)
        )
        runs.append(result)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    last = runs[-1]
    benchmark.extra_info["rows_read"] = last.metrics.rows_read
    benchmark.extra_info["blocks_fetched"] = last.metrics.blocks_fetched
    benchmark.extra_info["blocks_speedup_vs_exact"] = round(
        exact.metrics.blocks_fetched / max(last.metrics.blocks_fetched, 1), 2
    )
    benchmark.extra_info["stopped_early"] = last.metrics.stopped_early
    # The paper's primary metric: results must be correct, always.
    for result in runs:
        assert check_correctness(query, result, exact, epsilon_slack=1e-9), (
            query_name,
            bounder_name,
        )
